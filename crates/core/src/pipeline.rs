//! Event-driven pipeline simulation of the level-1 compute region.
//!
//! [`HierarchyStudy`](crate::HierarchyStudy) prices the memory hierarchy
//! with an analytic bottleneck model (max of compute and transfer
//! pipelines). This module is the detailed counterpart: an instruction-by-
//! instruction discrete-event simulation in which
//!
//! * `blocks` gate slots execute instructions for their fault-tolerant
//!   durations,
//! * `par_xfer` transfer channels carry memory→cache fetches at Table 3
//!   prices,
//! * a prefetcher with bounded lookahead books transfers ahead of
//!   execution,
//! * data dependencies from the circuit DAG gate every issue.
//!
//! Agreement between the two models (within tens of percent) is asserted
//! in the test suite; the pipeline additionally exposes *where* the time
//! goes (compute, transfer, stall).

use cqla_circuit::{Circuit, DependencyDag, QubitId};
use cqla_ecc::{Code, CodeLevel, EccMetrics, Level, TransferNetwork};
use cqla_iontrap::{PhysicalOp, TechnologyParams};
use cqla_sim::{ChannelPool, SimTime};
use cqla_units::Seconds;

use crate::cache::{CacheSim, CacheTrace, FetchPolicy};

/// Configuration of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineConfig {
    /// Error-correcting code (level 1 for compute, level 2 for memory).
    pub code: Code,
    /// Gate slots (compute blocks) at level 1.
    pub blocks: u32,
    /// Parallel memory↔cache transfer channels.
    pub par_xfer: u32,
    /// Cache capacity in logical qubits.
    pub cache_capacity: usize,
    /// Prefetch lookahead in instructions.
    pub lookahead: usize,
}

impl PipelineConfig {
    /// A reasonable default: the paper's 36-block region with cache 2×PE,
    /// 10 transfer channels, and a 64-instruction prefetch window.
    #[must_use]
    pub fn new(code: Code, blocks: u32, par_xfer: u32) -> Self {
        assert!(blocks > 0 && par_xfer > 0, "resources must be positive");
        Self {
            code,
            blocks,
            par_xfer,
            cache_capacity: (18 * blocks) as usize,
            lookahead: 64,
        }
    }

    /// Overrides the cache capacity.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the prefetch lookahead.
    #[must_use]
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = lookahead;
        self
    }
}

/// Where the pipeline's wall-clock time went.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineReport {
    /// End-to-end time of one traced addition.
    pub total_time: Seconds,
    /// Aggregate busy time across gate slots.
    pub compute_busy: Seconds,
    /// Aggregate busy time across transfer channels.
    pub transfer_busy: Seconds,
    /// Total time instructions spent waiting on transfers beyond their
    /// data dependencies.
    pub stall_time: Seconds,
    /// Instructions executed.
    pub instructions: usize,
    /// Memory fetches performed.
    pub fetches: u64,
    /// Mean gate-slot utilization.
    pub block_utilization: f64,
    /// Mean transfer-channel utilization.
    pub channel_utilization: f64,
}

/// The event-driven pipeline simulator.
///
/// # Examples
///
/// ```
/// use cqla_core::{PipelineConfig, PipelineSim};
/// use cqla_ecc::Code;
/// use cqla_iontrap::TechnologyParams;
/// use cqla_workloads::DraperAdder;
///
/// let sim = PipelineSim::new(&TechnologyParams::projected());
/// let adder = DraperAdder::new(64);
/// let config = PipelineConfig::new(Code::Steane713, 16, 10);
/// let report = sim.run_adder(&adder, &config);
/// assert!(report.total_time.as_secs() > 0.0);
/// assert!(report.block_utilization <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSim {
    tech: TechnologyParams,
}

impl PipelineSim {
    /// Builds the simulator at a technology point.
    #[must_use]
    pub fn new(tech: &TechnologyParams) -> Self {
        Self { tech: tech.clone() }
    }

    /// Traces one warmed-up addition of `adder` through the cache and
    /// replays it through the pipeline.
    #[must_use]
    pub fn run_adder(
        &self,
        adder: &cqla_workloads::DraperAdder,
        config: &PipelineConfig,
    ) -> PipelineReport {
        let circuit = adder.circuit();
        let inputs: Vec<QubitId> = adder
            .a_register()
            .chain(adder.b_register())
            .map(QubitId::new)
            .collect();
        let trace = CacheSim::new(config.cache_capacity).trace(
            &circuit,
            FetchPolicy::OptimizedLookahead,
            &inputs,
            1,
        );
        self.run_trace(&circuit, &trace, config)
    }

    /// Replays an arbitrary trace through the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the trace references instructions outside `circuit`.
    #[must_use]
    pub fn run_trace(
        &self,
        circuit: &Circuit,
        trace: &CacheTrace,
        config: &PipelineConfig,
    ) -> PipelineReport {
        let dag = DependencyDag::new(circuit);
        let gate_step = self.tech.duration(PhysicalOp::DoubleGate)
            + EccMetrics::compute(config.code, Level::ONE, &self.tech).ec_time();
        // One Table 3 service window moves a compute block's worth of
        // qubits (9) through a channel, so the marginal per-qubit occupancy
        // is latency/9 — the same block-granular batching the analytic
        // hierarchy model uses.
        let transfer_latency = TransferNetwork::new(&self.tech).latency(
            CodeLevel::new(config.code, Level::TWO),
            CodeLevel::new(config.code, Level::ONE),
        ) / crate::area::BLOCK_DATA_QUBITS as f64;

        let mut slots = ChannelPool::new(config.blocks as usize);
        let mut channels = ChannelPool::new(config.par_xfer as usize);
        let steps = trace.steps();
        let n = steps.len();
        // Transfer completion time per trace position (ZERO = no fetch).
        let mut transfer_done = vec![SimTime::ZERO; n];
        let mut booked = 0usize;
        let mut finish = vec![SimTime::ZERO; circuit.len()];
        let mut stall = Seconds::ZERO;
        let mut now = SimTime::ZERO;

        for (pos, step) in steps.iter().enumerate() {
            assert!(step.instr < circuit.len(), "trace out of range");
            // Prefetch transfers for the lookahead window.
            let window_end = (pos + config.lookahead.max(1)).min(n);
            while booked < window_end {
                let fetches = steps[booked].fetches;
                if fetches > 0 {
                    let mut done = SimTime::ZERO;
                    for _ in 0..fetches {
                        let b = channels.book(now, transfer_latency);
                        done = done.max(b.end);
                    }
                    transfer_done[booked] = done;
                }
                booked += 1;
            }

            // Data dependencies.
            let deps_done = dag
                .predecessors(step.instr)
                .iter()
                .map(|&p| finish[p])
                .max()
                .unwrap_or(SimTime::ZERO);
            let data_ready = deps_done.max(transfer_done[pos]);
            if transfer_done[pos] > deps_done {
                stall += transfer_done[pos].since(deps_done);
            }
            let duration =
                gate_step * circuit.gates()[step.instr].two_qubit_gate_equivalents() as f64;
            let booking = slots.book(data_ready, duration);
            finish[step.instr] = booking.end;
            now = now.max(booking.start);
        }

        let compute_end = slots.all_idle_at();
        let transfer_end = channels.all_idle_at();
        let total = compute_end.max(transfer_end).to_duration();
        PipelineReport {
            total_time: total,
            compute_busy: slots.busy_time(),
            transfer_busy: channels.busy_time(),
            stall_time: stall,
            instructions: n,
            fetches: trace.total_fetches(),
            block_utilization: slots.utilization(total),
            channel_utilization: channels.utilization(total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqla_workloads::DraperAdder;

    fn sim() -> PipelineSim {
        PipelineSim::new(&TechnologyParams::projected())
    }

    fn gate_step(code: Code) -> Seconds {
        let tech = TechnologyParams::projected();
        tech.duration(PhysicalOp::DoubleGate)
            + EccMetrics::compute(code, Level::ONE, &tech).ec_time()
    }

    #[test]
    fn fetch_free_run_matches_schedule_bound() {
        // Huge cache: no fetches; time should be within list-scheduling
        // reach of the ideal makespan.
        let adder = DraperAdder::new(32);
        let config = PipelineConfig::new(Code::Steane713, 8, 10).with_cache_capacity(10_000);
        let report = sim().run_adder(&adder, &config);
        assert_eq!(report.fetches, 0);
        assert_eq!(report.stall_time, Seconds::ZERO);
        let study = crate::SpecializationStudy::new(&TechnologyParams::projected());
        let ideal = gate_step(Code::Steane713) * study.ideal_makespan_units(32, 8) as f64;
        let ratio = report.total_time / ideal;
        // Issue follows the cache-optimized trace order, not critical-path
        // priority, so it trails the ideal bound by up to ~2.5x.
        assert!((1.0..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn transfer_starved_run_is_transfer_bound() {
        // Tiny cache and one channel: transfers dominate.
        let adder = DraperAdder::new(32);
        let config = PipelineConfig::new(Code::Steane713, 8, 1).with_cache_capacity(4);
        let report = sim().run_adder(&adder, &config);
        assert!(report.fetches > 50, "fetches {}", report.fetches);
        assert!(report.transfer_busy > report.compute_busy);
        assert!(
            report.channel_utilization > 0.9,
            "{}",
            report.channel_utilization
        );
        assert!(report.stall_time.as_secs() > 0.0);
    }

    #[test]
    fn more_channels_reduce_total_time() {
        // A small cache forces sustained fetch traffic.
        let adder = DraperAdder::new(64);
        let slow = sim().run_adder(
            &adder,
            &PipelineConfig::new(Code::Steane713, 16, 2).with_cache_capacity(48),
        );
        let fast = sim().run_adder(
            &adder,
            &PipelineConfig::new(Code::Steane713, 16, 10).with_cache_capacity(48),
        );
        assert!(fast.total_time < slow.total_time);
    }

    #[test]
    fn lookahead_hides_transfer_latency() {
        let adder = DraperAdder::new(64);
        let base = PipelineConfig::new(Code::Steane713, 16, 4).with_cache_capacity(96);
        let blind = sim().run_adder(&adder, &base.with_lookahead(1));
        let seeing = sim().run_adder(&adder, &base.with_lookahead(256));
        assert!(
            seeing.stall_time <= blind.stall_time,
            "lookahead must not increase stalls: {} vs {}",
            seeing.stall_time,
            blind.stall_time
        );
        assert!(seeing.total_time <= blind.total_time * 1.01);
    }

    #[test]
    fn utilizations_are_bounded() {
        let adder = DraperAdder::new(64);
        let report = sim().run_adder(&adder, &PipelineConfig::new(Code::BaconShor913, 16, 5));
        assert!((0.0..=1.0).contains(&report.block_utilization));
        assert!((0.0..=1.0).contains(&report.channel_utilization));
        assert_eq!(report.instructions, adder.circuit_ref().len());
    }

    #[test]
    fn agrees_with_analytic_hierarchy_model_within_factor_two() {
        let tech = TechnologyParams::projected();
        let adder = DraperAdder::new(256);
        let config = PipelineConfig::new(Code::Steane713, 36, 10).with_cache_capacity(2 * 9 * 36);
        let report = PipelineSim::new(&tech).run_adder(&adder, &config);
        let analytic = crate::HierarchyStudy::new(&tech).evaluate(crate::HierarchyConfig::new(
            Code::Steane713,
            256,
            10,
            36,
        ));
        let ratio = report.total_time / analytic.l1_adder_time;
        assert!(
            (0.4..2.5).contains(&ratio),
            "pipeline {} vs analytic {} (ratio {ratio:.2})",
            report.total_time,
            analytic.l1_adder_time
        );
    }

    #[test]
    fn dependencies_respected_under_contention() {
        // With one slot everything serializes in a valid order; finish
        // times must be strictly increasing along any dependency chain.
        let adder = DraperAdder::new(16);
        let circuit = adder.circuit();
        let config = PipelineConfig::new(Code::Steane713, 1, 1).with_cache_capacity(8);
        let report = sim().run_adder(&adder, &config);
        // Serial: compute busy equals work × step.
        let work: u64 = circuit
            .gates()
            .iter()
            .map(cqla_circuit::Gate::two_qubit_gate_equivalents)
            .sum();
        let expect = gate_step(Code::Steane713) * work as f64;
        assert!((report.compute_busy / expect - 1.0).abs() < 1e-9);
    }
}
