//! Fixed-width text tables for experiment output.

/// A simple aligned text table used by the benchmark harness to print
/// paper-style tables.
///
/// # Examples
///
/// ```
/// use cqla_core::report::TextTable;
///
/// let mut t = TextTable::new(["n", "speedup"]);
/// t.push_row(["64", "0.98"]);
/// let text = t.to_string();
/// assert!(text.contains("speedup"));
/// assert!(text.contains("0.98"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

impl core::fmt::Display for TextTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut core::fmt::Formatter<'_>, row: &[String]| -> core::fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with three significant-ish decimals for table cells.
#[must_use]
pub fn fmt3(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_cells() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.push_row(["12345", "x"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn fmt3_ranges() {
        assert_eq!(fmt3(0.0), "0");
        assert_eq!(fmt3(0.543), "0.543");
        assert_eq!(fmt3(9.14), "9.14");
        assert_eq!(fmt3(108.53), "109");
    }
}
