//! The CQLA area model (paper §3.2, §5.1 and DESIGN.md §4.5).
//!
//! Three kinds of real estate:
//!
//! * **QLA baseline** — every logical data qubit travels with two logical
//!   ancilla qubits (1:2), each a full error-correction tile, and every
//!   site is ringed by teleportation channels half a tile wide (the
//!   sea-of-qubits provisioning the paper is arguing against).
//! * **CQLA memory** — idle qubits are packed densely: one trapping region
//!   per physical data ion (idle ions do not need maneuvering lanes), with
//!   one full EC-ancilla site *shared by eight* data qubits (the 8:1
//!   ratio) behind narrow channels.
//! * **CQLA compute block** — nine logical data qubits plus eighteen
//!   logical ancilla (1:2), all full tiles, behind narrow channels.

use cqla_ecc::{Code, EccMetrics, Level};
use cqla_iontrap::TechnologyParams;
use cqla_units::SquareMillimeters;

/// Area multiplier for QLA sites: teleportation channels half a tile wide
/// on each side (1.5× per linear dimension).
pub const QLA_CHANNEL_FACTOR: f64 = 2.25;

/// Area multiplier for CQLA structures: narrow access channels (1.1× per
/// linear dimension).
pub const CQLA_CHANNEL_FACTOR: f64 = 1.21;

/// Logical data qubits sharing one EC-ancilla site in CQLA memory (the
/// paper's 8:1 data:ancilla memory ratio).
pub const MEMORY_DATA_PER_ANCILLA: u64 = 8;

/// Logical data qubits per compute block (paper §3.2).
pub const BLOCK_DATA_QUBITS: u64 = 9;

/// Logical ancilla qubits per compute block (1:2 data:ancilla).
pub const BLOCK_ANCILLA_QUBITS: u64 = 18;

/// The area model at one technology point.
///
/// # Examples
///
/// ```
/// use cqla_core::AreaModel;
/// use cqla_ecc::Code;
/// use cqla_iontrap::TechnologyParams;
///
/// let model = AreaModel::new(&TechnologyParams::projected());
/// let qla = model.qla_area(Code::Steane713, 6 * 1024);
/// let cqla = model.cqla_area(Code::Steane713, 6 * 1024, 100);
/// let reduction = qla / cqla;
/// // Paper Table 4: ~9.14x for the 1024-bit Steane configuration.
/// assert!(reduction > 7.0 && reduction < 12.0, "reduction {reduction}");
/// ```
#[derive(Debug, Clone)]
pub struct AreaModel {
    tech: TechnologyParams,
}

impl AreaModel {
    /// Builds the model for a technology point.
    #[must_use]
    pub fn new(tech: &TechnologyParams) -> Self {
        Self { tech: tech.clone() }
    }

    /// Footprint of one level-2 logical-qubit tile.
    #[must_use]
    pub fn tile_area(&self, code: Code) -> SquareMillimeters {
        EccMetrics::compute(code, Level::TWO, &self.tech).tile_area()
    }

    /// QLA area per logical data qubit: data + 2 ancilla sites, each a
    /// full tile ringed by wide teleportation channels.
    ///
    /// The QLA baseline always uses the Steane code (the paper compares
    /// every CQLA variant against the Steane-coded QLA of its prior work),
    /// but the per-code method is exposed for ablations.
    #[must_use]
    pub fn qla_area_per_data_qubit(&self, code: Code) -> SquareMillimeters {
        self.tile_area(code) * 3.0 * QLA_CHANNEL_FACTOR
    }

    /// CQLA memory area per logical data qubit: dense idle storage (one
    /// trapping region per physical data ion) plus a 1/8 share of a full
    /// EC-ancilla site.
    #[must_use]
    pub fn memory_area_per_data_qubit(&self, code: Code) -> SquareMillimeters {
        self.memory_area_per_data_qubit_with_ratio(code, MEMORY_DATA_PER_ANCILLA)
    }

    /// Memory area per data qubit at an arbitrary data:ancilla sharing
    /// ratio (for the ratio ablation).
    ///
    /// # Panics
    ///
    /// Panics if `data_per_ancilla` is zero.
    #[must_use]
    pub fn memory_area_per_data_qubit_with_ratio(
        &self,
        code: Code,
        data_per_ancilla: u64,
    ) -> SquareMillimeters {
        assert!(data_per_ancilla > 0, "memory needs some EC ancilla share");
        let pitch = self.tech.region_pitch();
        let region = (pitch * pitch).to_square_millimeters();
        let storage = region * code.data_qubits(Level::TWO) as f64;
        let ancilla_share = self.tile_area(code) * CQLA_CHANNEL_FACTOR / data_per_ancilla as f64;
        storage + ancilla_share
    }

    /// Footprint of one compute block: 9 data + 18 ancilla tiles behind
    /// narrow channels.
    #[must_use]
    pub fn compute_block_area(&self, code: Code) -> SquareMillimeters {
        self.tile_area(code)
            * (BLOCK_DATA_QUBITS + BLOCK_ANCILLA_QUBITS) as f64
            * CQLA_CHANNEL_FACTOR
    }

    /// Footprint of a level-1 cache slot (one level-1 tile with narrow
    /// channels) — used by the hierarchy's area accounting.
    #[must_use]
    pub fn cache_slot_area(&self, code: Code) -> SquareMillimeters {
        EccMetrics::compute(code, Level::ONE, &self.tech).tile_area() * CQLA_CHANNEL_FACTOR
    }

    /// Whole-processor QLA area for an application of `data_qubits`
    /// logical qubits.
    #[must_use]
    pub fn qla_area(&self, code: Code, data_qubits: u64) -> SquareMillimeters {
        self.qla_area_per_data_qubit(code) * data_qubits as f64
    }

    /// Whole-processor CQLA area: dense memory for every application qubit
    /// plus `blocks` compute blocks.
    #[must_use]
    pub fn cqla_area(&self, code: Code, data_qubits: u64, blocks: u32) -> SquareMillimeters {
        self.memory_area_per_data_qubit(code) * data_qubits as f64
            + self.compute_block_area(code) * f64::from(blocks)
    }

    /// Area-reduction factor of a CQLA configuration against the
    /// Steane-coded QLA baseline (the paper's Table 4 "Area Reduced"
    /// column).
    #[must_use]
    pub fn area_reduction(&self, code: Code, data_qubits: u64, blocks: u32) -> f64 {
        let baseline = self.qla_area(Code::Steane713, data_qubits);
        baseline / self.cqla_area(code, data_qubits, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AreaModel {
        AreaModel::new(&TechnologyParams::projected())
    }

    #[test]
    fn qla_per_qubit_matches_hand_computation() {
        let m = model();
        let per = m.qla_area_per_data_qubit(Code::Steane713).value();
        let tile = m.tile_area(Code::Steane713).value();
        assert!((per - 3.0 * 2.25 * tile).abs() < 1e-9);
        // ~23 mm² per logical data qubit: the "1 m² to factor 1024 bits"
        // scale of the paper's introduction (6n qubits × 23 mm² ≈ 0.14 m²,
        // same order).
        assert!((20.0..26.0).contains(&per), "{per}");
    }

    #[test]
    fn memory_is_an_order_denser_than_qla() {
        let m = model();
        for code in Code::ALL {
            let ratio =
                m.qla_area_per_data_qubit(Code::Steane713) / m.memory_area_per_data_qubit(code);
            assert!(ratio > 20.0, "{code}: only {ratio}x denser");
        }
    }

    #[test]
    fn paper_table4_headline_reductions() {
        // 1024-bit inputs, 100 blocks: paper reports 9.14x (Steane) and
        // 13.4x (Bacon-Shor). Structural model must land within ~10%.
        let m = model();
        let q = 6 * 1024;
        let steane = m.area_reduction(Code::Steane713, q, 100);
        let bs = m.area_reduction(Code::BaconShor913, q, 100);
        assert!((steane - 9.14).abs() / 9.14 < 0.10, "steane {steane}");
        assert!((bs - 13.4).abs() / 13.4 < 0.10, "bacon-shor {bs}");
    }

    #[test]
    fn more_blocks_cost_area() {
        let m = model();
        let small = m.area_reduction(Code::Steane713, 6 * 512, 64);
        let large = m.area_reduction(Code::Steane713, 6 * 512, 81);
        assert!(small > large);
    }

    #[test]
    fn reduction_grows_with_problem_size_at_proportional_blocks() {
        // Larger problems amortize the compute region better.
        let m = model();
        let small = m.area_reduction(Code::Steane713, 6 * 32, 4);
        let large = m.area_reduction(Code::Steane713, 6 * 1024, 100);
        assert!(large > small, "small {small}, large {large}");
    }

    #[test]
    fn sharing_ratio_ablation_monotone() {
        let m = model();
        let a4 = m.memory_area_per_data_qubit_with_ratio(Code::Steane713, 4);
        let a8 = m.memory_area_per_data_qubit_with_ratio(Code::Steane713, 8);
        let a16 = m.memory_area_per_data_qubit_with_ratio(Code::Steane713, 16);
        assert!(a4 > a8 && a8 > a16);
    }

    #[test]
    fn cache_slot_is_much_smaller_than_block() {
        let m = model();
        for code in Code::ALL {
            let ratio = m.compute_block_area(code) / m.cache_slot_area(code);
            assert!(ratio > 50.0, "{code}: {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "ancilla share")]
    fn zero_sharing_ratio_panics() {
        let _ = model().memory_area_per_data_qubit_with_ratio(Code::Steane713, 0);
    }
}
