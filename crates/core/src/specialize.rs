//! Specialization into memory and compute regions — the Table 4 engine
//! (paper §5.1).
//!
//! A CQLA configuration picks a code and a compute-block count `B`; the
//! Draper-adder dependency DAG is list-scheduled onto `B` gate slots, and
//! the resulting makespan, together with the area model, yields the
//! paper's three Table 4 columns: area reduction, speedup (vs the
//! maximally parallel Steane QLA), and their product, the *gain product*.

use cqla_circuit::{DependencyDag, Gate, ListScheduler, Schedule, Width};
use cqla_ecc::{Code, EccMetrics, Level};
use cqla_iontrap::TechnologyParams;
use cqla_units::Seconds;
use cqla_workloads::{DraperAdder, ModExp};

use crate::eval::EvalCtx;

/// A CQLA design point: code, input size, and compute provisioning.
///
/// # Examples
///
/// ```
/// use cqla_core::CqlaConfig;
/// use cqla_ecc::Code;
///
/// let config = CqlaConfig::new(Code::BaconShor913, 1024, 100);
/// assert_eq!(config.memory_qubits(), 6 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CqlaConfig {
    code: Code,
    input_bits: u32,
    compute_blocks: u32,
}

impl CqlaConfig {
    /// Creates a design point.
    ///
    /// # Panics
    ///
    /// Panics if `input_bits` or `compute_blocks` is zero.
    #[must_use]
    pub fn new(code: Code, input_bits: u32, compute_blocks: u32) -> Self {
        assert!(input_bits > 0, "input size must be positive");
        assert!(compute_blocks > 0, "at least one compute block is required");
        Self {
            code,
            input_bits,
            compute_blocks,
        }
    }

    /// The error-correcting code.
    #[must_use]
    pub fn code(&self) -> Code {
        self.code
    }

    /// Application input size (bits of the number being factored).
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Number of compute blocks.
    #[must_use]
    pub fn compute_blocks(&self) -> u32 {
        self.compute_blocks
    }

    /// Logical data qubits the memory must hold (the modular
    /// exponentiation working set, 6n).
    #[must_use]
    pub fn memory_qubits(&self) -> u64 {
        ModExp::new(self.input_bits).working_qubits()
    }
}

/// Evaluated performance of a CQLA design point — one Table 4 row for one
/// code.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpecializationResult {
    /// The evaluated configuration.
    pub config: CqlaConfig,
    /// Area-reduction factor vs the Steane QLA baseline.
    pub area_reduction: f64,
    /// Adder speedup vs the maximally parallel Steane QLA (values < 1 mean
    /// the CQLA is slower; the point of Table 4 is how little is lost).
    pub speedup: f64,
    /// Mean compute-block utilization during the adder.
    pub utilization: f64,
    /// Wall-clock time of one addition on this configuration.
    pub adder_time: Seconds,
    /// `area_reduction × speedup` (QLA = 1.0).
    pub gain_product: f64,
}

/// The specialization study: schedules adders onto bounded compute blocks
/// and prices the resulting machines.
///
/// # Examples
///
/// ```
/// use cqla_core::{CqlaConfig, SpecializationStudy};
/// use cqla_ecc::Code;
/// use cqla_iontrap::TechnologyParams;
///
/// let study = SpecializationStudy::new(&TechnologyParams::projected());
/// let r = study.evaluate(CqlaConfig::new(Code::Steane713, 32, 9));
/// // Paper Table 4: with 9 blocks the 32-bit adder keeps most QLA
/// // performance at a third of the area.
/// assert!(r.speedup > 0.6 && r.speedup <= 1.0);
/// assert!(r.area_reduction > 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct SpecializationStudy {
    tech: TechnologyParams,
}

impl SpecializationStudy {
    /// Builds the study at a technology point.
    #[must_use]
    pub fn new(tech: &TechnologyParams) -> Self {
        Self { tech: tech.clone() }
    }

    /// Schedules the `n`-bit Draper adder onto `blocks` gate slots with an
    /// online list scheduler (used for utilization and occupancy studies).
    #[must_use]
    pub fn schedule_adder(&self, n: u32, blocks: u32) -> Schedule {
        let adder = DraperAdder::new(n);
        let dag = DependencyDag::new(adder.circuit_ref());
        ListScheduler::new(&dag).schedule(
            Width::Blocks(blocks as usize),
            Gate::two_qubit_gate_equivalents,
        )
    }

    /// The perfectly packed makespan bound `max(critical path, work / B)`
    /// in two-qubit-gate-step units.
    ///
    /// The paper's Table 4 speedups correspond to this bound (a static
    /// scheduler with full lookahead and overlapped communication packs
    /// the adder almost perfectly); the online list schedule from
    /// [`SpecializationStudy::schedule_adder`] lands within ~30% of it.
    #[must_use]
    pub fn ideal_makespan_units(&self, n: u32, blocks: u32) -> u64 {
        let adder = DraperAdder::new(n);
        let dag = DependencyDag::new(adder.circuit_ref());
        let weight = Gate::two_qubit_gate_equivalents;
        let cp = dag.critical_path(weight);
        let work = dag.total_work(weight);
        cp.max(work.div_ceil(u64::from(blocks)))
    }

    /// Wall-clock duration of one logical gate step for `code` at level 2.
    #[must_use]
    pub fn gate_step_time(&self, code: Code) -> Seconds {
        self.tech.duration(cqla_iontrap::PhysicalOp::DoubleGate)
            + EccMetrics::compute(code, Level::TWO, &self.tech).ec_time()
    }

    /// Evaluates one design point against the QLA baseline.
    #[must_use]
    pub fn evaluate(&self, config: CqlaConfig) -> SpecializationResult {
        self.evaluate_ctx(config, &EvalCtx::new())
    }

    /// Evaluates one design point, reusing sub-results memoized in `ctx`
    /// (byte-identical to [`SpecializationStudy::evaluate`] — every
    /// cached entry is a pure function of its key).
    #[must_use]
    pub fn evaluate_ctx(&self, config: CqlaConfig, ctx: &EvalCtx) -> SpecializationResult {
        let costs = ctx.adder_costs(config.input_bits, config.compute_blocks);
        let step = ctx.gate_step_time(config.code, Level::TWO, &self.tech);
        let adder_time = step * costs.ideal_makespan as f64;
        let qla_time = ctx.qla_adder_time(&self.tech, config.input_bits);
        let speedup = qla_time / adder_time;
        let area_reduction = ctx.area_reduction(
            &self.tech,
            config.code,
            config.memory_qubits(),
            config.compute_blocks,
        );
        SpecializationResult {
            config,
            area_reduction,
            speedup,
            utilization: costs.utilization,
            adder_time,
            gain_product: area_reduction * speedup,
        }
    }

    /// Compute-block utilization of the `n`-bit adder at each block count
    /// (the Fig 6a series).
    #[must_use]
    pub fn utilization_sweep(&self, n: u32, block_counts: &[u32]) -> Vec<(u32, f64)> {
        block_counts
            .iter()
            .map(|&b| (b, self.schedule_adder(n, b).utilization()))
            .collect()
    }
}

/// The `(input bits, block counts)` grid of the paper's Table 4.
pub const TABLE4_GRID: [(u32, [u32; 2]); 6] = [
    (32, [4, 9]),
    (64, [9, 16]),
    (128, [16, 25]),
    (256, [36, 49]),
    (512, [64, 81]),
    (1024, [100, 121]),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> SpecializationStudy {
        SpecializationStudy::new(&TechnologyParams::projected())
    }

    #[test]
    fn speedup_shape_matches_table4() {
        // Qualitative Table 4 shape (absolute values differ because our
        // Brent-Kung DAG exposes ~2x the parallelism of the paper's
        // round-synchronous scheduler; see EXPERIMENTS.md): specializing
        // never beats maximum parallelism on a single addition, more
        // blocks always help, and enough blocks reach the unlimited bound.
        let s = study();
        for (n, [b1, b2]) in TABLE4_GRID {
            let r1 = s.evaluate(CqlaConfig::new(Code::Steane713, n, b1));
            let r2 = s.evaluate(CqlaConfig::new(Code::Steane713, n, b2));
            assert!(r1.speedup > 0.0 && r1.speedup <= 1.0, "n={n}, B={b1}");
            assert!(r2.speedup >= r1.speedup, "n={n}: B={b2} worse than B={b1}");
        }
        // The 32-bit adder saturates at ~15 blocks — the paper's Fig 2
        // observation at our construction's parallelism.
        let sat = s.evaluate(CqlaConfig::new(Code::Steane713, 32, 15));
        assert!((sat.speedup - 1.0).abs() < 1e-9, "got {}", sat.speedup);
    }

    #[test]
    fn small_block_speedups_are_fractional_but_substantial() {
        // Paper Table 4 reports 0.54-0.98 for Steane; our more-parallel
        // DAG lands lower at equal block counts but in the same regime
        // (tens of percent, not orders of magnitude).
        let s = study();
        let r = s.evaluate(CqlaConfig::new(Code::Steane713, 32, 4));
        assert!((0.2..0.8).contains(&r.speedup), "got {}", r.speedup);
    }

    #[test]
    fn bacon_shor_speedup_is_about_three_times_steane() {
        let s = study();
        for (n, b) in [(256, 49), (1024, 121)] {
            let st = s.evaluate(CqlaConfig::new(Code::Steane713, n, b)).speedup;
            let bs = s
                .evaluate(CqlaConfig::new(Code::BaconShor913, n, b))
                .speedup;
            let ratio = bs / st;
            assert!((2.5..=3.3).contains(&ratio), "n={n}, B={b}: ratio {ratio}");
        }
    }

    #[test]
    fn gain_product_is_area_times_speedup() {
        let s = study();
        let r = s.evaluate(CqlaConfig::new(Code::BaconShor913, 128, 16));
        assert!((r.gain_product - r.area_reduction * r.speedup).abs() < 1e-9);
        // Every CQLA point beats the QLA's gain product of 1.0.
        assert!(r.gain_product > 1.0);
    }

    #[test]
    fn utilization_decreases_with_blocks() {
        // Paper Fig 6a: utilization falls as blocks are added.
        let sweep = study().utilization_sweep(128, &[4, 16, 36, 100]);
        for pair in sweep.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-9, "utilization rose: {pair:?}");
        }
    }

    #[test]
    fn larger_adders_sustain_higher_utilization() {
        // Paper Fig 6a: at a fixed block count, bigger adders keep blocks
        // busier.
        let s = study();
        let small = s.schedule_adder(32, 36).utilization();
        let large = s.schedule_adder(512, 36).utilization();
        assert!(large > small, "small {small}, large {large}");
    }

    #[test]
    fn memory_qubits_are_6n() {
        assert_eq!(
            CqlaConfig::new(Code::Steane713, 256, 36).memory_qubits(),
            1536
        );
    }

    #[test]
    #[should_panic(expected = "at least one compute block")]
    fn zero_blocks_rejected() {
        let _ = CqlaConfig::new(Code::Steane713, 32, 0);
    }
}
