//! The quantum memory hierarchy (paper §3.3, §5.2, Table 5).
//!
//! Memory stays at level 2 (slow, reliable); a cache and compute region run
//! at level 1 (fast, less reliable); the transfer network moves logical
//! qubits between encodings at Table 3 prices through a bounded number of
//! parallel transfer channels. This module assembles the cache simulator,
//! the transfer network and the fidelity budget into the paper's Table 5
//! quantities.
//!
//! ## Level-mixing policies
//!
//! The paper's text prescribes "one level 1 addition for every two level 2
//! additions" with the two compute regions operating concurrently; its
//! Table 5 "Adder SpeedUp" column, however, is not derivable from that
//! ratio (see EXPERIMENTS.md). We therefore evaluate three policies that
//! bracket the design space:
//!
//! * [`MixPolicy::Interleave`] — the text's 1:2 ratio (conservative),
//! * [`MixPolicy::FidelityBudgeted`] — as much level-1 work as the Eq. 1
//!   error budget allows,
//! * [`MixPolicy::Balanced`] — both regions saturated (optimistic bound).

use cqla_ecc::{Code, CodeLevel, Level, TransferNetwork};
use cqla_iontrap::TechnologyParams;
use cqla_sim::{ChannelPool, SimTime};
use cqla_units::Seconds;

use crate::area::{AreaModel, BLOCK_ANCILLA_QUBITS, BLOCK_DATA_QUBITS, CQLA_CHANNEL_FACTOR};
use crate::eval::EvalCtx;

/// How additions are split between the level-1 and level-2 compute
/// regions.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum MixPolicy {
    /// `l1` additions at level 1 for every `l2` at level 2, the regions
    /// running concurrently (the paper's stated 1:2 rule).
    Interleave {
        /// Additions per window at level 1.
        l1: u32,
        /// Additions per window at level 2.
        l2: u32,
    },
    /// Maximize level-1 work subject to the Eq. 1 level-mixing budget.
    FidelityBudgeted,
    /// Both regions saturated (no fidelity constraint) — the upper bound.
    Balanced,
}

impl core::fmt::Display for MixPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Interleave { l1, l2 } => write!(f, "interleave {l1}:{l2}"),
            Self::FidelityBudgeted => write!(f, "fidelity-budgeted"),
            Self::Balanced => write!(f, "balanced"),
        }
    }
}

/// A memory-hierarchy design point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HierarchyConfig {
    /// Error-correcting code (both levels use the same code).
    pub code: Code,
    /// Adder width in bits.
    pub input_bits: u32,
    /// Parallel transfers possible between memory and cache (Table 5's
    /// `Par Xfer`).
    pub par_xfer: u32,
    /// Compute blocks in each compute region (level 1 and level 2).
    pub blocks: u32,
    /// Cache capacity as a multiple of the compute-region qubit count.
    pub cache_factor: f64,
}

impl HierarchyConfig {
    /// Creates a design point with the paper's defaults (cache = 2 × PE).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(code: Code, input_bits: u32, par_xfer: u32, blocks: u32) -> Self {
        assert!(
            input_bits > 0 && par_xfer > 0 && blocks > 0,
            "parameters must be positive"
        );
        Self {
            code,
            input_bits,
            par_xfer,
            blocks,
            cache_factor: 2.0,
        }
    }

    /// Logical qubits in the level-1 compute region (`9 × blocks`).
    #[must_use]
    pub fn compute_qubits(&self) -> u64 {
        BLOCK_DATA_QUBITS * u64::from(self.blocks)
    }

    /// Cache capacity in logical qubits.
    #[must_use]
    pub fn cache_capacity(&self) -> usize {
        (self.cache_factor * self.compute_qubits() as f64)
            .round()
            .max(1.0) as usize
    }
}

/// Evaluated memory-hierarchy performance — one Table 5 row.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HierarchyResult {
    /// The evaluated configuration.
    pub config: HierarchyConfig,
    /// Steady-state cache hit rate during repeated additions.
    pub cache_hit_rate: f64,
    /// Steady-state memory→cache fetches per addition.
    pub fetches_per_addition: u64,
    /// Wall-clock time of one addition in the level-1 region including
    /// transfer stalls.
    pub l1_adder_time: Seconds,
    /// Of which: pure compute.
    pub l1_compute_time: Seconds,
    /// Of which: the transfer-network pipeline.
    pub l1_transfer_time: Seconds,
    /// Wall-clock time of one addition in the level-2 region.
    pub l2_adder_time: Seconds,
    /// Speedup of the level-1 region over the level-2 region (the paper's
    /// "L1 SpeedUp").
    pub l1_speedup: f64,
    /// Speedup of the level-2 region over the QLA baseline (the paper's
    /// "L2 SpeedUp").
    pub l2_speedup: f64,
    /// Whole-adder speedup vs QLA under each policy.
    pub adder_speedup_interleave: f64,
    /// Fidelity-budgeted policy speedup.
    pub adder_speedup_budgeted: f64,
    /// Balanced (optimistic) policy speedup.
    pub adder_speedup_balanced: f64,
    /// Area reduction vs QLA including the hierarchy's extra structures.
    pub area_reduction: f64,
    /// `area_reduction × adder_speedup_interleave`.
    pub gain_product_conservative: f64,
    /// `area_reduction × adder_speedup_balanced`.
    pub gain_product_optimistic: f64,
}

impl HierarchyResult {
    /// The whole-adder speedup under a given level-mixing policy.
    ///
    /// For [`MixPolicy::Interleave`] with a ratio other than the
    /// precomputed 1:2, the speedup is recomputed from the stored adder
    /// times.
    #[must_use]
    pub fn adder_speedup(&self, policy: MixPolicy) -> f64 {
        match policy {
            MixPolicy::Interleave { l1: 1, l2: 2 } => self.adder_speedup_interleave,
            MixPolicy::Interleave { l1, l2 } => {
                // Reconstruct the QLA reference from the stored ratios.
                let qla = self.l2_adder_time * self.l2_speedup;
                interleave_speedup(l1, l2, qla, self.l1_adder_time, self.l2_adder_time)
            }
            MixPolicy::FidelityBudgeted => self.adder_speedup_budgeted,
            MixPolicy::Balanced => self.adder_speedup_balanced,
        }
    }
}

/// The memory-hierarchy study.
///
/// # Examples
///
/// ```
/// use cqla_core::{HierarchyConfig, HierarchyStudy};
/// use cqla_ecc::Code;
/// use cqla_iontrap::TechnologyParams;
///
/// let study = HierarchyStudy::new(&TechnologyParams::projected());
/// let r = study.evaluate(HierarchyConfig::new(Code::Steane713, 256, 10, 36));
/// // The level-1 region runs the adder an order of magnitude faster than
/// // the level-2 region (paper Table 5: ~17x).
/// assert!(r.l1_speedup > 5.0, "l1 speedup {}", r.l1_speedup);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchyStudy {
    tech: TechnologyParams,
}

impl HierarchyStudy {
    /// Builds the study at a technology point.
    #[must_use]
    pub fn new(tech: &TechnologyParams) -> Self {
        Self { tech: tech.clone() }
    }

    /// Evaluates a design point.
    #[must_use]
    pub fn evaluate(&self, config: HierarchyConfig) -> HierarchyResult {
        self.evaluate_ctx(config, &EvalCtx::new())
    }

    /// Evaluates a design point, reusing sub-results memoized in `ctx`
    /// (byte-identical to [`HierarchyStudy::evaluate`] — every cached
    /// entry is a pure function of its key).
    #[must_use]
    pub fn evaluate_ctx(&self, config: HierarchyConfig, ctx: &EvalCtx) -> HierarchyResult {
        let code = config.code;
        let n = config.input_bits;

        // --- Cache behaviour in steady state (repeated additions). ---
        let behavior = ctx.cache_behavior(n, config.cache_capacity());
        let fetches_per_addition = behavior.fetches_per_addition;
        let cache_hit_rate = behavior.hit_rate;

        // --- Level-1 adder time: compute vs transfer pipeline. ---
        let makespan = ctx.adder_costs(n, config.blocks).ideal_makespan;
        let gate_l1 = ctx.gate_step_time(code, Level::ONE, &self.tech);
        let l1_compute_time = gate_l1 * makespan as f64;

        let transfers = TransferNetwork::new(&self.tech);
        let down = transfers.latency(
            CodeLevel::new(code, Level::TWO),
            CodeLevel::new(code, Level::ONE),
        );
        // Transfers batch at compute-block granularity: the transfer
        // network region processes one 9-qubit block's worth of cat-state
        // teleportations per channel service.
        let batch_size = BLOCK_DATA_QUBITS;
        let batches = fetches_per_addition.div_ceil(batch_size);
        let mut pool = ChannelPool::new(config.par_xfer as usize);
        for _ in 0..batches {
            pool.book(SimTime::ZERO, down);
        }
        let l1_transfer_time = pool.all_idle_at().to_duration();
        let l1_adder_time = l1_compute_time.max(l1_transfer_time) + down;

        // --- Level-2 region and QLA reference. ---
        let gate_l2 = ctx.gate_step_time(code, Level::TWO, &self.tech);
        let l2_adder_time = gate_l2 * makespan as f64;
        let qla_time = ctx.qla_adder_time(&self.tech, n);

        let l1_speedup = l2_adder_time / l1_adder_time;
        let l2_speedup = qla_time / l2_adder_time;
        let s1_vs_qla = qla_time / l1_adder_time;

        // --- Level-mixing policies. ---
        let adder_speedup_interleave =
            interleave_speedup(1, 2, qla_time, l1_adder_time, l2_adder_time);
        let adder_speedup_balanced = s1_vs_qla + l2_speedup;
        let share = ctx.level1_share(code, &self.tech, n);
        // Level-1 ops occupy `share` of the op budget; the level-2 stream
        // runs throughout. Throughput gain = S2 / (1 - alpha) with alpha
        // capped both by the budget and by the L1 region's own capacity.
        let alpha_capacity = s1_vs_qla / (s1_vs_qla + l2_speedup);
        let alpha = share.min(alpha_capacity);
        let adder_speedup_budgeted = if alpha >= 1.0 {
            s1_vs_qla
        } else {
            l2_speedup / (1.0 - alpha)
        };

        // --- Area, including the hierarchy's level-1 structures. ---
        let area = AreaModel::new(&self.tech);
        let memory_qubits = cqla_workloads::ModExp::new(n).working_qubits();
        let l1_tile = ctx.ecc_metrics(code, Level::ONE, &self.tech).tile_area();
        let l1_block_area =
            l1_tile * (BLOCK_DATA_QUBITS + BLOCK_ANCILLA_QUBITS) as f64 * CQLA_CHANNEL_FACTOR;
        let cqla_area = area.cqla_area(code, memory_qubits, config.blocks)
            + l1_block_area * f64::from(config.blocks)
            + area.cache_slot_area(code) * config.cache_capacity() as f64;
        let area_reduction = area.qla_area(Code::Steane713, memory_qubits) / cqla_area;

        HierarchyResult {
            config,
            cache_hit_rate,
            fetches_per_addition,
            l1_adder_time,
            l1_compute_time,
            l1_transfer_time,
            l2_adder_time,
            l1_speedup,
            l2_speedup,
            adder_speedup_interleave,
            adder_speedup_budgeted,
            adder_speedup_balanced,
            area_reduction,
            gain_product_conservative: area_reduction * adder_speedup_interleave,
            gain_product_optimistic: area_reduction * adder_speedup_balanced,
        }
    }
}

/// Speedup of the `l1:l2` interleave with concurrent regions: `l1 + l2`
/// additions complete every `max(l1 × T_l1, l2 × T_l2)` window.
fn interleave_speedup(l1: u32, l2: u32, qla: Seconds, t_l1: Seconds, t_l2: Seconds) -> f64 {
    let window = (t_l1 * f64::from(l1)).max(t_l2 * f64::from(l2));
    qla * f64::from(l1 + l2) / window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specialize::SpecializationStudy;

    fn study() -> HierarchyStudy {
        HierarchyStudy::new(&TechnologyParams::projected())
    }

    fn config(code: Code, par_xfer: u32) -> HierarchyConfig {
        HierarchyConfig::new(code, 256, par_xfer, 36)
    }

    #[test]
    fn l1_region_is_an_order_faster_than_l2() {
        let r = study().evaluate(config(Code::Steane713, 10));
        // Paper Table 5: 17.4 for this point; the structural model must
        // land in the same order of magnitude.
        assert!((5.0..60.0).contains(&r.l1_speedup), "{}", r.l1_speedup);
        assert!(r.l1_adder_time < r.l2_adder_time);
    }

    #[test]
    fn more_transfer_channels_help() {
        let s = study();
        let ten = s.evaluate(config(Code::Steane713, 10));
        let five = s.evaluate(config(Code::Steane713, 5));
        assert!(
            ten.l1_speedup > five.l1_speedup,
            "10x {} <= 5x {}",
            ten.l1_speedup,
            five.l1_speedup
        );
        // Transfer-bound regime: halving channels roughly halves transfer
        // throughput.
        assert!(five.l1_transfer_time > ten.l1_transfer_time * 1.5);
    }

    #[test]
    fn policies_are_ordered() {
        for code in Code::ALL {
            let r = study().evaluate(config(code, 10));
            assert!(
                r.adder_speedup_interleave <= r.adder_speedup_balanced,
                "{code}"
            );
            assert!(
                r.adder_speedup_budgeted <= r.adder_speedup_balanced + 1e-9,
                "{code}"
            );
            // The hierarchy must beat the flat CQLA (Table 4) under every
            // policy that uses level 1 at all.
            assert!(r.adder_speedup_interleave > r.l2_speedup, "{code}");
        }
    }

    #[test]
    fn gain_products_exceed_table4() {
        // Paper: hierarchy gain products (Table 5) dominate flat ones
        // (Table 4).
        let r = study().evaluate(config(Code::BaconShor913, 10));
        let flat = SpecializationStudy::new(&TechnologyParams::projected()).evaluate(
            crate::specialize::CqlaConfig::new(Code::BaconShor913, 256, 36),
        );
        assert!(
            r.gain_product_conservative > flat.gain_product,
            "hierarchy {} <= flat {}",
            r.gain_product_conservative,
            flat.gain_product
        );
    }

    #[test]
    fn steady_state_fetches_are_bounded_by_inputs() {
        let r = study().evaluate(config(Code::Steane713, 10));
        // Per addition, at most the 2n input qubits plus churn need
        // refetching.
        assert!(r.fetches_per_addition > 0);
        assert!(
            r.fetches_per_addition <= 4 * 256,
            "fetches {}",
            r.fetches_per_addition
        );
    }

    #[test]
    fn cache_hit_rate_is_high_with_optimized_fetch() {
        let r = study().evaluate(config(Code::Steane713, 10));
        assert!(r.cache_hit_rate > 0.5, "hit rate {}", r.cache_hit_rate);
    }

    #[test]
    fn area_reduction_slightly_below_flat_cqla() {
        let r = study().evaluate(config(Code::Steane713, 10));
        let flat = AreaModel::new(&TechnologyParams::projected()).area_reduction(
            Code::Steane713,
            6 * 256,
            36,
        );
        assert!(r.area_reduction < flat);
        assert!(
            r.area_reduction > flat * 0.7,
            "hierarchy {} flat {flat}",
            r.area_reduction
        );
    }

    #[test]
    fn policy_accessor_matches_fields() {
        let r = study().evaluate(config(Code::Steane713, 10));
        assert_eq!(
            r.adder_speedup(MixPolicy::Interleave { l1: 1, l2: 2 }),
            r.adder_speedup_interleave
        );
        assert_eq!(
            r.adder_speedup(MixPolicy::FidelityBudgeted),
            r.adder_speedup_budgeted
        );
        assert_eq!(
            r.adder_speedup(MixPolicy::Balanced),
            r.adder_speedup_balanced
        );
        // A heavier L1 share under interleave raises the speedup while the
        // L1 stream still fits in the window.
        let one_one = r.adder_speedup(MixPolicy::Interleave { l1: 1, l2: 1 });
        assert!(one_one > 0.0);
    }

    #[test]
    fn interleave_formula() {
        let s = interleave_speedup(
            1,
            2,
            Seconds::new(10.0),
            Seconds::new(1.0),
            Seconds::new(5.0),
        );
        // Window = max(1, 10) = 10 s for 3 additions vs 10 s each on QLA.
        assert!((s - 3.0).abs() < 1e-12);
    }
}
