//! The memoized evaluation context — one [`EvalCtx`] per experiment run
//! (or shared across a whole grid of runs) caches the keyed sub-results
//! the paper's tables are assembled from.
//!
//! The evaluation pipeline recomputes a handful of expensive pure
//! sub-computations from scratch at every design point: the Draper-adder
//! dependency DAG and its bounded-width schedule (keyed by `(bits,
//! blocks)`), the unlimited-parallelism QLA makespan (keyed by `bits`),
//! the cache-simulator steady state (keyed by `(bits, capacity)`), ECC
//! metrics (keyed by `(tech, code, level)`), the Eq. 1 level-mixing
//! budget, and floorplan area reductions. Neighboring grid points share
//! most of these — the 24-point builtin sweep has only six distinct
//! `(bits, blocks)` pairs — so a shared context turns a grid's cost from
//! `points × full evaluation` into `distinct keys × computation`.
//!
//! Every value cached here is a pure function of its key, computed by
//! exactly the same code path the unmemoized evaluation used, so results
//! are byte-identical whether a context is shared, fresh, or absent.
//! Technology presets are keyed by [`TechnologyParams::name`], which
//! uniquely identifies a parameter set (the type has no other
//! constructors).
//!
//! Hit/miss counters aggregate per context via [`EvalCtx::counters`] and
//! process-wide via [`memo_counters`] (surfaced by `cqla serve` in
//! `/v1/stats`).

use cqla_circuit::{asm, Circuit, DependencyDag, Gate, ListScheduler, QubitId, Width};
use cqla_compile::ScheduleCosts;
use cqla_ecc::fidelity::{AppSize, FidelityBudget};
use cqla_ecc::memo::Memo;
use cqla_ecc::{Code, EccMetrics, Level};
use cqla_iontrap::{PhysicalOp, TechnologyParams};
use cqla_units::Seconds;
use cqla_workloads::{DraperAdder, ShorInstance};

use crate::area::AreaModel;
use crate::cache::{CacheSim, FetchPolicy};
use crate::qla::QlaBaseline;

/// Process-wide cumulative memo `(hits, misses)` across every context
/// this process ever created. Re-exported from [`cqla_ecc::memo`] so the
/// HTTP service can report them without a direct `cqla-ecc` dependency.
#[must_use]
pub fn memo_counters() -> (u64, u64) {
    cqla_ecc::memo::global_counters()
}

/// Schedule-derived costs of one `(bits, blocks)` adder configuration:
/// everything the studies extract from the dependency DAG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdderCosts {
    /// Mean compute-block utilization of the online list schedule.
    pub utilization: f64,
    /// Perfectly packed makespan bound `max(critical path, work / B)` in
    /// two-qubit-gate-step units.
    pub ideal_makespan: u64,
}

/// Steady-state cache behavior of repeated `bits`-bit additions through a
/// cache of a given capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheBehavior {
    /// Steady-state hit rate.
    pub hit_rate: f64,
    /// Memory→cache fetches per addition once warm.
    pub fetches_per_addition: u64,
}

/// The memoization context threaded through experiment evaluation.
///
/// `Sync`: every table is lock-protected, so one context can back all
/// worker threads of a grid run (the sweep executor shares one per run).
///
/// # Examples
///
/// ```
/// use cqla_core::{CqlaConfig, EvalCtx, SpecializationStudy};
/// use cqla_ecc::Code;
/// use cqla_iontrap::TechnologyParams;
///
/// let ctx = EvalCtx::new();
/// let study = SpecializationStudy::new(&TechnologyParams::projected());
/// let a = study.evaluate_ctx(CqlaConfig::new(Code::Steane713, 32, 9), &ctx);
/// let b = study.evaluate_ctx(CqlaConfig::new(Code::BaconShor913, 32, 9), &ctx);
/// // The second point reuses the (32, 9) schedule: hits accrue.
/// let (hits, _misses) = ctx.counters();
/// assert!(hits > 0);
/// assert_eq!(a.utilization, b.utilization);
/// ```
#[derive(Debug, Default)]
pub struct EvalCtx {
    ecc: Memo<(&'static str, Code, Level), EccMetrics>,
    adder: Memo<(u32, u32), AdderCosts>,
    qla_makespan: Memo<u32, u64>,
    cache: Memo<(u32, usize), CacheBehavior>,
    level1_share: Memo<(&'static str, Code, u32), f64>,
    area: Memo<(&'static str, Code, u64, u32), f64>,
    compiled: Memo<(String, u32), ScheduleCosts>,
}

impl EvalCtx {
    /// Creates an empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`EccMetrics::compute`].
    #[must_use]
    pub fn ecc_metrics(&self, code: Code, level: Level, tech: &TechnologyParams) -> EccMetrics {
        self.ecc.get_or_compute((tech.name(), code, level), || {
            EccMetrics::compute(code, level, tech)
        })
    }

    /// Wall-clock duration of one logical gate step for `code` at `level`
    /// (physical two-qubit gate plus error correction) — the repeated
    /// `tech.duration(DoubleGate) + metrics.ec_time()` idiom, memoized
    /// through [`EvalCtx::ecc_metrics`].
    #[must_use]
    pub fn gate_step_time(&self, code: Code, level: Level, tech: &TechnologyParams) -> Seconds {
        tech.duration(PhysicalOp::DoubleGate) + self.ecc_metrics(code, level, tech).ec_time()
    }

    /// Memoized schedule costs of the `bits`-bit adder on `blocks` gate
    /// slots: one DAG construction serves both the bounded-width list
    /// schedule and the ideal-makespan bound.
    #[must_use]
    pub fn adder_costs(&self, bits: u32, blocks: u32) -> AdderCosts {
        self.adder.get_or_compute((bits, blocks), || {
            let adder = DraperAdder::new(bits);
            let dag = DependencyDag::new(adder.circuit_ref());
            let weight = Gate::two_qubit_gate_equivalents;
            let schedule =
                ListScheduler::new(&dag).schedule(Width::Blocks(blocks as usize), weight);
            let cp = dag.critical_path(weight);
            let work = dag.total_work(weight);
            AdderCosts {
                utilization: schedule.utilization(),
                ideal_makespan: cp.max(work.div_ceil(u64::from(blocks))),
            }
        })
    }

    /// Memoized [`QlaBaseline::adder_makespan_units`] (technology
    /// independent: the unlimited-width schedule of the adder DAG).
    #[must_use]
    pub fn qla_adder_makespan_units(&self, bits: u32) -> u64 {
        self.qla_makespan.get_or_compute(bits, || {
            let adder = DraperAdder::new(bits);
            let dag = DependencyDag::new(adder.circuit_ref());
            ListScheduler::new(&dag)
                .schedule(Width::Unlimited, Gate::two_qubit_gate_equivalents)
                .makespan()
        })
    }

    /// [`QlaBaseline::adder_time`] assembled from memoized parts: the
    /// technology-independent makespan times the tech-priced gate step.
    #[must_use]
    pub fn qla_adder_time(&self, tech: &TechnologyParams, bits: u32) -> Seconds {
        self.gate_step_time(QlaBaseline::CODE, Level::TWO, tech)
            * self.qla_adder_makespan_units(bits) as f64
    }

    /// Memoized steady-state cache behavior: one cold and one warm
    /// [`CacheSim`] pass over the `bits`-bit adder trace.
    #[must_use]
    pub fn cache_behavior(&self, bits: u32, capacity: usize) -> CacheBehavior {
        self.cache.get_or_compute((bits, capacity), || {
            let adder = DraperAdder::new(bits);
            let circuit = adder.circuit();
            let inputs: Vec<QubitId> = adder
                .a_register()
                .chain(adder.b_register())
                .map(QubitId::new)
                .collect();
            let sim = CacheSim::new(capacity);
            let cold = sim.run(&circuit, FetchPolicy::OptimizedLookahead, &inputs, 1);
            let warm = sim.run(&circuit, FetchPolicy::OptimizedLookahead, &inputs, 2);
            CacheBehavior {
                hit_rate: warm.hit_rate(),
                fetches_per_addition: warm.fetch_misses() - cold.fetch_misses(),
            }
        })
    }

    /// Memoized Eq. 1 level-mixing budget: the maximum share of
    /// operations a `bits`-bit Shor instance may run at level 1.
    #[must_use]
    pub fn level1_share(&self, code: Code, tech: &TechnologyParams, bits: u32) -> f64 {
        self.level1_share
            .get_or_compute((tech.name(), code, bits), || {
                let budget = FidelityBudget::new(code, tech);
                let shor = ShorInstance::new(bits.max(32));
                let (k, q) = shor.app_size();
                budget.max_level1_share(AppSize::new(k, q))
            })
    }

    /// Memoized [`AreaModel::area_reduction`] (the flat-CQLA floorplan
    /// ratio).
    #[must_use]
    pub fn area_reduction(
        &self,
        tech: &TechnologyParams,
        code: Code,
        memory_qubits: u64,
        blocks: u32,
    ) -> f64 {
        self.area
            .get_or_compute((tech.name(), code, memory_qubits, blocks), || {
                AreaModel::new(tech).area_reduction(code, memory_qubits, blocks)
            })
    }

    /// Memoized [`cqla_compile::schedule_costs`] of a compiled (already
    /// lowered) circuit on `blocks` compute blocks. The key is the
    /// circuit's emitted asm text — exact, collision-free, and identical
    /// for identical programs however they were produced (inline asm,
    /// the seeded generator, …) — so every point of a `compile` grid
    /// that lowers to the same circuit shares one schedule.
    #[must_use]
    pub fn compiled_costs(&self, lowered: &Circuit, blocks: u32) -> ScheduleCosts {
        self.compiled
            .get_or_compute((asm::emit(lowered), blocks), || {
                cqla_compile::schedule_costs(lowered, blocks)
            })
    }

    /// This context's cumulative `(hits, misses)` across all its tables.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        let tables: [(u64, u64); 7] = [
            (self.ecc.hits(), self.ecc.misses()),
            (self.adder.hits(), self.adder.misses()),
            (self.qla_makespan.hits(), self.qla_makespan.misses()),
            (self.cache.hits(), self.cache.misses()),
            (self.level1_share.hits(), self.level1_share.misses()),
            (self.area.hits(), self.area.misses()),
            (self.compiled.hits(), self.compiled.misses()),
        ];
        tables
            .iter()
            .fold((0, 0), |(h, m), &(th, tm)| (h + th, m + tm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechnologyParams {
        TechnologyParams::projected()
    }

    #[test]
    fn memoized_parts_match_the_direct_computations() {
        let ctx = EvalCtx::new();
        let t = tech();
        assert_eq!(
            ctx.ecc_metrics(Code::Steane713, Level::TWO, &t),
            EccMetrics::compute(Code::Steane713, Level::TWO, &t)
        );
        let qla = QlaBaseline::new(&t);
        assert_eq!(
            ctx.qla_adder_makespan_units(64),
            qla.adder_makespan_units(64)
        );
        assert_eq!(ctx.qla_adder_time(&t, 64), qla.adder_time(64));
        assert_eq!(
            ctx.area_reduction(&t, Code::BaconShor913, 6 * 64, 16),
            AreaModel::new(&t).area_reduction(Code::BaconShor913, 6 * 64, 16)
        );
    }

    #[test]
    fn adder_costs_match_the_study() {
        let ctx = EvalCtx::new();
        let study = crate::SpecializationStudy::new(&tech());
        let costs = ctx.adder_costs(64, 9);
        assert_eq!(costs.ideal_makespan, study.ideal_makespan_units(64, 9));
        assert_eq!(costs.utilization, study.schedule_adder(64, 9).utilization());
    }

    #[test]
    fn repeated_lookups_hit() {
        let ctx = EvalCtx::new();
        let t = tech();
        for _ in 0..3 {
            let _ = ctx.ecc_metrics(Code::Steane713, Level::ONE, &t);
            let _ = ctx.adder_costs(32, 4);
        }
        let (hits, misses) = ctx.counters();
        assert_eq!(misses, 2);
        assert_eq!(hits, 4);
    }

    #[test]
    fn tech_presets_do_not_collide() {
        let ctx = EvalCtx::new();
        let current = ctx.ecc_metrics(Code::Steane713, Level::TWO, &TechnologyParams::current());
        let projected = ctx.ecc_metrics(Code::Steane713, Level::TWO, &tech());
        assert_ne!(current.ec_time(), projected.ec_time());
    }

    #[test]
    fn compiled_costs_match_the_direct_pipeline() {
        let ctx = EvalCtx::new();
        let circuit = cqla_compile::random::random_circuit(8, 64, 5);
        let lowered = cqla_circuit::decompose_toffolis(&circuit);
        let memoized = ctx.compiled_costs(&lowered, 4);
        assert_eq!(memoized, cqla_compile::schedule_costs(&lowered, 4));
        // Same circuit, same width: a hit. Different width: a miss.
        let before = ctx.counters();
        let _ = ctx.compiled_costs(&lowered, 4);
        let _ = ctx.compiled_costs(&lowered, 8);
        let after = ctx.counters();
        assert_eq!(after.0 - before.0, 1);
        assert_eq!(after.1 - before.1, 1);
    }

    #[test]
    fn process_counters_are_visible() {
        let ctx = EvalCtx::new();
        let _ = ctx.qla_adder_makespan_units(32);
        let (_, misses) = memo_counters();
        assert!(misses > 0);
    }
}
