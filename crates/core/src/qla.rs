//! The QLA baseline (paper §2; Metodi et al., MICRO-38) — the
//! sea-of-qubits architecture every CQLA result is normalized against.

use cqla_circuit::{DependencyDag, Gate, ListScheduler, Width};
use cqla_ecc::{Code, EccMetrics, Level};
use cqla_iontrap::TechnologyParams;
use cqla_units::{Seconds, SquareMillimeters};
use cqla_workloads::DraperAdder;

use crate::area::AreaModel;

/// The homogeneous QLA baseline: Steane-coded, level-2 everywhere, every
/// logical qubit escorted by two logical ancilla, computation allowed at
/// every site (maximum parallelism).
///
/// # Examples
///
/// ```
/// use cqla_core::QlaBaseline;
/// use cqla_iontrap::TechnologyParams;
///
/// let qla = QlaBaseline::new(&TechnologyParams::projected());
/// let t = qla.adder_time(64);
/// // A 64-bit carry-lookahead addition takes minutes at level 2 (the
/// // paper's ~0.3 s per EC, ~22 Toffoli layers).
/// assert!(t.as_secs() > 60.0 && t.as_secs() < 600.0);
/// ```
#[derive(Debug, Clone)]
pub struct QlaBaseline {
    tech: TechnologyParams,
    metrics: EccMetrics,
}

impl QlaBaseline {
    /// The QLA's fixed code choice.
    pub const CODE: Code = Code::Steane713;

    /// Builds the baseline at a technology point.
    #[must_use]
    pub fn new(tech: &TechnologyParams) -> Self {
        Self {
            tech: tech.clone(),
            metrics: EccMetrics::compute(Self::CODE, Level::TWO, tech),
        }
    }

    /// Wall-clock duration of one logical two-qubit gate step (gate + EC).
    #[must_use]
    pub fn gate_step_time(&self) -> Seconds {
        self.tech.duration(cqla_iontrap::PhysicalOp::DoubleGate) + self.metrics.ec_time()
    }

    /// Unlimited-parallelism makespan of one `n`-bit Draper addition, in
    /// two-qubit-gate-step units (the DAG critical path with Toffoli = 15).
    #[must_use]
    pub fn adder_makespan_units(&self, n: u32) -> u64 {
        let adder = DraperAdder::new(n);
        let dag = DependencyDag::new(adder.circuit_ref());
        ListScheduler::new(&dag)
            .schedule(Width::Unlimited, Gate::two_qubit_gate_equivalents)
            .makespan()
    }

    /// Wall-clock time of one `n`-bit Draper addition under maximum
    /// parallelism.
    #[must_use]
    pub fn adder_time(&self, n: u32) -> Seconds {
        self.gate_step_time() * self.adder_makespan_units(n) as f64
    }

    /// Processor area for an application of `data_qubits` logical qubits.
    #[must_use]
    pub fn area(&self, data_qubits: u64) -> SquareMillimeters {
        AreaModel::new(&self.tech).qla_area(Self::CODE, data_qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qla() -> QlaBaseline {
        QlaBaseline::new(&TechnologyParams::projected())
    }

    #[test]
    fn gate_step_is_ec_dominated() {
        let q = qla();
        let step = q.gate_step_time();
        let ec = EccMetrics::compute(Code::Steane713, Level::TWO, &TechnologyParams::projected())
            .ec_time();
        assert!(step > ec);
        assert!(step < ec * 1.01);
    }

    #[test]
    fn makespan_grows_logarithmically() {
        let q = qla();
        let m64 = q.adder_makespan_units(64);
        let m1024 = q.adder_makespan_units(1024);
        // 4 extra Toffoli rounds (60 units) per doubling: 1024 vs 64 is 4
        // doublings ≈ +240 units.
        assert!(m1024 > m64);
        assert!(m1024 < m64 + 400, "m64={m64}, m1024={m1024}");
    }

    #[test]
    fn factoring_scale_area_is_square_meters() {
        // The paper's headline: ~1 m² (1e6 mm²) of trap area to factor
        // 1024-bit numbers on the QLA.
        let area = qla().area(6 * 1024);
        assert!(area.value() > 1e5, "area {area}");
        assert!(area.as_square_meters() < 1.0, "area {area}");
    }
}
