//! The paper's Tables 1–5 as [`Experiment`]s.

use cqla_ecc::{table2_metrics, Code, EccMetrics, TransferNetwork};
use cqla_iontrap::{TechPoint, TechnologyParams};
use cqla_units::Seconds;

use crate::eval::EvalCtx;
use crate::hierarchy::{HierarchyConfig, HierarchyResult, HierarchyStudy};
use crate::json::{Json, ToJson};
use crate::report::{fmt3, TextTable};
use crate::specialize::{CqlaConfig, SpecializationResult, SpecializationStudy, TABLE4_GRID};

use super::api::{parse_tech, unknown_key, Domain, Experiment, ExperimentOutput, Param};

/// Table 1: the two ion-trap technology operating points, side by side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table 1: ion-trap technology parameters"
    }

    fn run(&self) -> ExperimentOutput {
        ExperimentOutput::new(
            format!(
                "{}\n\n{}",
                TechnologyParams::current(),
                TechnologyParams::projected()
            ),
            Json::arr([TechnologyParams::current(), TechnologyParams::projected()]),
        )
    }
}

/// Table 2: error-correction metrics for both codes at both levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2 {
    /// Technology operating point.
    pub tech: TechPoint,
}

impl Default for Table2 {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
        }
    }
}

impl Table2 {
    /// The four metric blocks (both codes × both levels).
    #[must_use]
    pub fn rows(&self) -> Vec<EccMetrics> {
        table2_metrics(&self.tech.params())
    }

    /// Renders the paper-style table for `rows`.
    #[must_use]
    pub fn render(rows: &[EccMetrics]) -> String {
        let mut t = TextTable::new([
            "code-level",
            "EC time (s)",
            "tile (mm^2)",
            "gate (s)",
            "data",
            "ancilla",
        ]);
        for m in rows {
            t.push_row([
                format!("{} {}", m.code().label(), m.level()),
                format!("{:.2e}", m.ec_time().as_secs()),
                fmt3(m.tile_area().value()),
                format!("{:.2e}", m.transversal_gate_time().as_secs()),
                m.data_qubits().to_string(),
                m.ancilla_qubits().to_string(),
            ]);
        }
        t.to_string()
    }
}

impl Experiment for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn title(&self) -> &'static str {
        "Table 2: error-correction metrics"
    }

    fn params(&self) -> Vec<Param> {
        vec![Param::new("tech", self.tech, Domain::Tech)]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        let rows = self.rows();
        ExperimentOutput::new(Self::render(&rows), rows.to_json())
    }
}

/// Table 3: the 4×4 code-transfer latency matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Data {
    /// Latencies indexed `[source][destination]` in the paper's order
    /// (7-L1, 7-L2, 9-L1, 9-L2).
    pub matrix: [[Seconds; 4]; 4],
}

/// Table 3 as an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3 {
    /// Technology operating point.
    pub tech: TechPoint,
}

impl Default for Table3 {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
        }
    }
}

impl Table3 {
    /// The latency matrix.
    #[must_use]
    pub fn data(&self) -> Table3Data {
        Table3Data {
            matrix: TransferNetwork::new(&self.tech.params()).table3_matrix(),
        }
    }

    /// Renders the paper-style matrix for `data`.
    #[must_use]
    pub fn render(data: &Table3Data) -> String {
        let labels = ["7-L1", "7-L2", "9-L1", "9-L2"];
        let mut t = TextTable::new(["(seconds)", "7-L1", "7-L2", "9-L1", "9-L2"]);
        for (i, row) in data.matrix.iter().enumerate() {
            let mut cells = vec![labels[i].to_string()];
            for cell in row {
                cells.push(fmt3(cell.as_secs()));
            }
            t.push_row(cells);
        }
        t.to_string()
    }
}

impl Experiment for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn title(&self) -> &'static str {
        "Table 3: code-transfer latencies"
    }

    fn params(&self) -> Vec<Param> {
        vec![Param::new("tech", self.tech, Domain::Tech)]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        let data = self.data();
        ExperimentOutput::new(Self::render(&data), data.to_json())
    }
}

/// One Table 4 row: a `(input size, block count)` point evaluated under
/// both codes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table4Row {
    /// Input size in bits.
    pub input_bits: u32,
    /// Compute blocks.
    pub blocks: u32,
    /// Steane evaluation.
    pub steane: SpecializationResult,
    /// Bacon-Shor evaluation.
    pub bacon_shor: SpecializationResult,
}

/// Computes one Table 4 row: the `(input size, block count)` cell under
/// both codes. Exposed per cell so the parallel experiment engine can fan
/// one job out per grid point and still match [`Table4`] bitwise.
#[must_use]
pub fn table4_row(tech: &TechnologyParams, input_bits: u32, blocks: u32) -> Table4Row {
    table4_row_ctx(tech, input_bits, blocks, &EvalCtx::new())
}

/// [`table4_row`] reusing sub-results memoized in `ctx` (byte-identical;
/// both codes of a cell share the adder schedule and QLA baseline).
#[must_use]
pub fn table4_row_ctx(
    tech: &TechnologyParams,
    input_bits: u32,
    blocks: u32,
    ctx: &EvalCtx,
) -> Table4Row {
    let study = SpecializationStudy::new(tech);
    Table4Row {
        input_bits,
        blocks,
        steane: study.evaluate_ctx(CqlaConfig::new(Code::Steane713, input_bits, blocks), ctx),
        bacon_shor: study
            .evaluate_ctx(CqlaConfig::new(Code::BaconShor913, input_bits, blocks), ctx),
    }
}

/// Table 4 as an experiment: the CQLA specialization grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4 {
    /// Technology operating point.
    pub tech: TechPoint,
}

impl Default for Table4 {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
        }
    }
}

impl Table4 {
    /// The paper's 12-row grid (six sizes × two block counts).
    #[must_use]
    pub fn rows(&self) -> Vec<Table4Row> {
        self.rows_ctx(&EvalCtx::new())
    }

    /// [`Table4::rows`] reusing sub-results memoized in `ctx`.
    #[must_use]
    pub fn rows_ctx(&self, ctx: &EvalCtx) -> Vec<Table4Row> {
        let tech = self.tech.params();
        let mut rows = Vec::new();
        for (bits, blocks) in TABLE4_GRID {
            for b in blocks {
                rows.push(table4_row_ctx(&tech, bits, b, ctx));
            }
        }
        rows
    }

    /// Renders the paper-style table for `rows`.
    #[must_use]
    pub fn render(rows: &[Table4Row]) -> String {
        let mut t = TextTable::new([
            "input",
            "blocks",
            "area x(St)",
            "area x(BSr)",
            "speedup(St)",
            "speedup(BSr)",
            "GP(St)",
            "GP(BSr)",
        ]);
        for r in rows {
            t.push_row([
                format!("{}-bit", r.input_bits),
                r.blocks.to_string(),
                fmt3(r.steane.area_reduction),
                fmt3(r.bacon_shor.area_reduction),
                fmt3(r.steane.speedup),
                fmt3(r.bacon_shor.speedup),
                fmt3(r.steane.gain_product),
                fmt3(r.bacon_shor.gain_product),
            ]);
        }
        t.to_string()
    }
}

impl Experiment for Table4 {
    fn id(&self) -> &'static str {
        "table4"
    }

    fn title(&self) -> &'static str {
        "Table 4: CQLA modular exponentiation"
    }

    fn params(&self) -> Vec<Param> {
        vec![Param::new("tech", self.tech, Domain::Tech)]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        self.run_ctx(&EvalCtx::new())
    }

    fn run_ctx(&self, ctx: &EvalCtx) -> ExperimentOutput {
        let rows = self.rows_ctx(ctx);
        ExperimentOutput::new(Self::render(&rows), rows.to_json())
    }
}

/// One Table 5 row: a hierarchy design point for one code.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table5Row {
    /// Parallel memory↔cache transfers.
    pub par_xfer: u32,
    /// Adder size in bits.
    pub input_bits: u32,
    /// The code.
    pub code: Code,
    /// Full evaluation.
    pub result: HierarchyResult,
}

/// The `(input bits → primary block count)` pairs Table 5 inherits from
/// Table 4.
#[must_use]
pub fn primary_blocks(input_bits: u32) -> u32 {
    TABLE4_GRID
        .iter()
        .find(|&&(bits, _)| bits == input_bits)
        .map_or_else(
            || ((input_bits as f64).sqrt() as u32).max(1).pow(2).max(4),
            |&(_, blocks)| blocks[0],
        )
}

/// The parallel-transfer budgets Table 5 sweeps.
pub const TABLE5_PAR_XFER: [u32; 2] = [10, 5];

/// The adder sizes Table 5 sweeps.
pub const TABLE5_SIZES: [u32; 3] = [256, 512, 1024];

/// Computes one Table 5 row: a `(code, par-xfer, size)` cell on its
/// Table 4 primary block count. Per-cell twin of [`Table5`], for the
/// parallel experiment engine.
#[must_use]
pub fn table5_row(
    tech: &TechnologyParams,
    code: Code,
    par_xfer: u32,
    input_bits: u32,
) -> Table5Row {
    table5_row_ctx(tech, code, par_xfer, input_bits, &EvalCtx::new())
}

/// [`table5_row`] reusing sub-results memoized in `ctx` (byte-identical;
/// the cache simulation and level-1 share are shared across par-xfer
/// budgets at the same size).
#[must_use]
pub fn table5_row_ctx(
    tech: &TechnologyParams,
    code: Code,
    par_xfer: u32,
    input_bits: u32,
    ctx: &EvalCtx,
) -> Table5Row {
    let config = HierarchyConfig::new(code, input_bits, par_xfer, primary_blocks(input_bits));
    Table5Row {
        par_xfer,
        input_bits,
        code,
        result: HierarchyStudy::new(tech).evaluate_ctx(config, ctx),
    }
}

/// Table 5 as an experiment: the memory-hierarchy cube (both codes,
/// par-xfer ∈ {10, 5}, sizes {256, 512, 1024}).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table5 {
    /// Technology operating point.
    pub tech: TechPoint,
}

impl Default for Table5 {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
        }
    }
}

impl Table5 {
    /// The 12-row cube in the paper's order.
    #[must_use]
    pub fn rows(&self) -> Vec<Table5Row> {
        self.rows_ctx(&EvalCtx::new())
    }

    /// [`Table5::rows`] reusing sub-results memoized in `ctx`.
    #[must_use]
    pub fn rows_ctx(&self, ctx: &EvalCtx) -> Vec<Table5Row> {
        let tech = self.tech.params();
        let mut rows = Vec::new();
        for code in Code::ALL {
            for par_xfer in TABLE5_PAR_XFER {
                for bits in TABLE5_SIZES {
                    rows.push(table5_row_ctx(&tech, code, par_xfer, bits, ctx));
                }
            }
        }
        rows
    }

    /// Renders the paper-style table for `rows`.
    #[must_use]
    pub fn render(rows: &[Table5Row]) -> String {
        let mut t = TextTable::new([
            "code",
            "xfer",
            "size",
            "L1 speedup",
            "L2 speedup",
            "adder(1:2)",
            "adder(budget)",
            "adder(max)",
            "area x",
            "GP(1:2)",
            "GP(max)",
        ]);
        for r in rows {
            t.push_row([
                r.code.label().to_string(),
                r.par_xfer.to_string(),
                r.input_bits.to_string(),
                fmt3(r.result.l1_speedup),
                fmt3(r.result.l2_speedup),
                fmt3(r.result.adder_speedup_interleave),
                fmt3(r.result.adder_speedup_budgeted),
                fmt3(r.result.adder_speedup_balanced),
                fmt3(r.result.area_reduction),
                fmt3(r.result.gain_product_conservative),
                fmt3(r.result.gain_product_optimistic),
            ]);
        }
        t.to_string()
    }
}

impl Experiment for Table5 {
    fn id(&self) -> &'static str {
        "table5"
    }

    fn title(&self) -> &'static str {
        "Table 5: CQLA memory hierarchy"
    }

    fn params(&self) -> Vec<Param> {
        vec![Param::new("tech", self.tech, Domain::Tech)]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        self.run_ctx(&EvalCtx::new())
    }

    fn run_ctx(&self, ctx: &EvalCtx) -> ExperimentOutput {
        let rows = self.rows_ctx(ctx);
        ExperimentOutput::new(Self::render(&rows), rows.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_renders_four_rows() {
        let t2 = Table2::default();
        let rows = t2.rows();
        assert_eq!(rows.len(), 4);
        let text = Table2::render(&rows);
        assert!(text.contains("[[7,1,3]] L2"));
        assert!(text.contains("441"));
    }

    #[test]
    fn table3_diagonal_zero_and_rendered() {
        let t3 = Table3::default();
        let data = t3.data();
        for i in 0..4 {
            assert_eq!(data.matrix[i][i], Seconds::ZERO);
        }
        assert!(Table3::render(&data).contains("9-L2"));
    }

    #[test]
    fn table4_has_twelve_rows_with_growing_gain() {
        let t4 = Table4::default();
        let rows = t4.rows();
        assert_eq!(rows.len(), 12);
        // Gain products grow with input size (paper: 14 → 30 for
        // Bacon-Shor across the sweep; ours 10.7 → 17 — same direction,
        // damped by the more-parallel adder DAG).
        let first = &rows[0];
        let last = &rows[11];
        assert!(last.bacon_shor.gain_product > first.bacon_shor.gain_product * 1.3);
        // Bacon-Shor dominates Steane everywhere.
        for r in &rows {
            assert!(
                r.bacon_shor.gain_product > r.steane.gain_product,
                "{}",
                r.input_bits
            );
        }
        assert!(Table4::render(&rows).contains("1024-bit"));
    }

    #[test]
    fn primary_blocks_matches_grid() {
        assert_eq!(primary_blocks(32), 4);
        assert_eq!(primary_blocks(256), 36);
        assert_eq!(primary_blocks(1024), 100);
    }

    #[test]
    fn table5_rows_and_ordering() {
        let t5 = Table5::default();
        let rows = t5.rows();
        assert_eq!(rows.len(), 2 * 2 * 3);
        for r in &rows {
            assert!(
                r.result.l1_speedup > 1.0,
                "{:?}",
                (r.code, r.par_xfer, r.input_bits)
            );
        }
        assert!(Table5::render(&rows).contains("L1 speedup"));
    }

    #[test]
    fn tech_parameter_changes_the_result() {
        let mut t4 = Table4::default();
        let projected = t4.run();
        t4.set("tech", "current").unwrap();
        let current = t4.run();
        assert_ne!(projected.data, current.data);
        assert!(projected.passed && current.passed);
    }
}
