//! The experiment API: one trait for every paper artifact, plus the
//! registry that enumerates them.
//!
//! Every table, figure and utility artifact of the paper's evaluation is
//! an [`Experiment`]: a typed parameter struct with paper defaults, a
//! stable [`Experiment::id`], and a [`Experiment::run`] that produces
//! both the text rendering and the JSON value. The [`registry`] is the
//! single enumeration every consumer — the `cqla` CLI, the benchmark
//! harness, the end-to-end tests, the examples — iterates instead of
//! naming generators one by one.
//!
//! # Examples
//!
//! ```
//! use cqla_core::experiments::{find, registry};
//!
//! // Every paper artifact is enumerable…
//! assert!(registry().len() >= 11);
//! // …addressable by id…
//! let mut table4 = find("table4").expect("table4 is registered");
//! // …and parameterizable without knowing its concrete type.
//! table4.set("tech", "current").unwrap();
//! let output = table4.run();
//! assert!(output.text.contains("1024-bit"));
//! ```

use cqla_ecc::Code;
use cqla_iontrap::TechPoint;

use super::compile::CompileSource;
use crate::json::Json;

/// What running an experiment produces: the paper-style text rendering
/// and the structured JSON value, plus a pass/fail verdict (only the
/// `verify` artifact ever fails).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutput {
    /// The rendered table/series, as the paper prints it.
    pub text: String,
    /// The structured result (what `--format json` emits as `data`).
    pub data: Json,
    /// Whether the experiment's self-checks passed. `true` for every
    /// artifact except a failing `verify`.
    pub passed: bool,
}

impl ExperimentOutput {
    /// Wraps a rendering and its JSON value as a passing output.
    #[must_use]
    pub fn new(text: impl Into<String>, data: Json) -> Self {
        Self {
            text: text.into(),
            data,
            passed: true,
        }
    }

    /// The self-describing artifact document `{"artifact": id, "data": …}`
    /// that `cqla run <id> --format json` prints.
    #[must_use]
    pub fn document(&self, id: &str) -> Json {
        Json::obj([("artifact", Json::from(id)), ("data", self.data.clone())])
    }
}

/// The typed domain of one experiment parameter: what values it
/// accepts.
///
/// This is the *single* value-parsing layer of the parameter surface:
/// [`Experiment::set`] (via [`parse_tech`], [`parse_code`],
/// [`parse_positive`], [`parse_ratio`]) and the grid/sweep value-set
/// grammars ([`super::grid`], `cqla-sweep::parse`) share the same
/// underlying predicates — [`TechPoint::parse`], [`Code::parse`], and
/// the capped integer / positive-decimal parsers behind
/// [`Domain::admits`] — so a value that parses in a sweep spec can
/// never be rejected by `set`, and vice versa (the registry
/// completeness test in `tests/registry.rs` pins this per declared
/// parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// A technology preset label (`current|projected`).
    Tech,
    /// An error-correcting code slug (`steane|bacon-shor`).
    Code,
    /// A positive integer in `1..=`[`super::grid::MAX_INT`].
    PosInt,
    /// A positive finite decimal (cache ratios and the like).
    Ratio,
    /// A compile program source (`inline-asm|random`).
    Source,
}

impl Domain {
    /// The `accepts` string for usage messages (e.g. `current|projected`).
    #[must_use]
    pub const fn accepts(self) -> &'static str {
        match self {
            Self::Tech => TECH_ACCEPTS,
            Self::Code => CODE_ACCEPTS,
            Self::PosInt => INT_ACCEPTS,
            Self::Ratio => RATIO_ACCEPTS,
            Self::Source => SOURCE_ACCEPTS,
        }
    }

    /// Whether `value` parses in this domain. This predicate is the
    /// shared contract between `Experiment::set` and the grid grammar.
    #[must_use]
    pub fn admits(self, value: &str) -> bool {
        match self {
            Self::Tech => TechPoint::parse(value).is_some(),
            Self::Code => Code::parse(value).is_some(),
            Self::PosInt => parse_pos_int(value).is_some(),
            Self::Ratio => parse_pos_ratio(value).is_some(),
            Self::Source => CompileSource::parse(value).is_some(),
        }
    }
}

/// Parses a positive integer within the shared grid/sweep cap.
pub(crate) fn parse_pos_int(value: &str) -> Option<u32> {
    value
        .parse::<u32>()
        .ok()
        .filter(|n| (1..=super::grid::MAX_INT).contains(n))
}

/// Parses a positive finite decimal.
pub(crate) fn parse_pos_ratio(value: &str) -> Option<f64> {
    value
        .parse::<f64>()
        .ok()
        .filter(|x| x.is_finite() && *x > 0.0)
}

/// One declared parameter of an experiment: key, current value, and the
/// typed domain of values it accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The `key` in `cqla run <id> key=value`.
    pub key: &'static str,
    /// The current (or default) value, rendered.
    pub value: String,
    /// The typed domain of accepted values.
    pub domain: Domain,
}

impl Param {
    /// Builds a parameter row.
    #[must_use]
    pub fn new(key: &'static str, value: impl ToString, domain: Domain) -> Self {
        Self {
            key,
            value: value.to_string(),
            domain,
        }
    }

    /// Accepted values, for usage messages (e.g. `current|projected`).
    #[must_use]
    pub const fn accepts(&self) -> &'static str {
        self.domain.accepts()
    }
}

/// One *declared* parameter of an experiment: its key, typed domain, and
/// paper default. This is what the grid grammar validates `key=value-set`
/// expressions against — see [`super::grid::Grid::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// The `key` in `cqla run <id> key=value-set`.
    pub key: &'static str,
    /// The typed domain of accepted values.
    pub domain: Domain,
    /// The paper-default value, rendered.
    pub default: String,
}

/// Why a `key=value` override was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// The experiment has no such parameter.
    UnknownKey {
        /// The rejected key.
        key: String,
        /// The keys the experiment does accept.
        valid: Vec<&'static str>,
        /// The closest valid key, when one is close enough to suggest.
        suggestion: Option<&'static str>,
    },
    /// The key exists but the value does not parse.
    BadValue {
        /// The parameter the value was for.
        key: &'static str,
        /// The rejected value.
        value: String,
        /// What the parameter accepts.
        accepts: &'static str,
    },
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownKey {
                key,
                valid,
                suggestion,
            } => {
                write!(f, "unknown parameter `{key}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                if valid.is_empty() {
                    write!(f, "; this experiment takes no parameters")
                } else {
                    write!(f, "; valid: {}", valid.join(", "))
                }
            }
            Self::BadValue {
                key,
                value,
                accepts,
            } => {
                write!(f, "bad value `{value}` for `{key}`; expected {accepts}")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// One paper artifact: identity, typed parameters, execution.
///
/// Implementations are small structs whose public fields are the paper
/// defaults (`Table4 { tech }`, `Fig2 { bits, cap }`, …); the trait adds
/// the uniform string-keyed surface the CLI and other front ends drive.
pub trait Experiment {
    /// Stable machine-readable identifier (`table4`, `fig6a`, `verify`).
    fn id(&self) -> &'static str;

    /// Human-readable title, as the artifact banner prints it.
    fn title(&self) -> &'static str;

    /// The declared parameters with their current values. Empty when the
    /// experiment takes none.
    fn params(&self) -> Vec<Param> {
        Vec::new()
    }

    /// The declared parameter surface: key, typed domain, and default
    /// value per parameter. On the fresh instances the [`registry`]
    /// hands out, the defaults are the paper defaults — which is what
    /// the grid grammar ([`super::grid`]) validates value-set
    /// expressions against.
    fn specs(&self) -> Vec<ParamSpec> {
        self.params()
            .into_iter()
            .map(|p| ParamSpec {
                key: p.key,
                domain: p.domain,
                default: p.value,
            })
            .collect()
    }

    /// Applies one `key=value` override.
    ///
    /// # Errors
    ///
    /// [`ParamError::UnknownKey`] when the experiment has no such
    /// parameter, [`ParamError::BadValue`] when the value does not parse.
    fn set(&mut self, key: &str, value: &str) -> Result<(), ParamError> {
        let _ = value;
        Err(unknown_key(key, &self.params()))
    }

    /// Runs the experiment under its current parameters.
    fn run(&self) -> ExperimentOutput;

    /// Runs the experiment, reusing sub-results memoized in `ctx`.
    ///
    /// Grid executors share one context across all points so neighboring
    /// parameterizations reuse DAG schedules, cache-simulator passes, and
    /// ECC tables. The default forwards to [`Experiment::run`] (correct
    /// for artifacts with nothing worth caching); study-backed
    /// experiments override it. Implementations must stay byte-identical
    /// to `run` — everything cached in an [`EvalCtx`](crate::eval::EvalCtx)
    /// is a pure function
    /// of its key.
    fn run_ctx(&self, ctx: &crate::eval::EvalCtx) -> ExperimentOutput {
        let _ = ctx;
        self.run()
    }
}

/// Renders an experiment's parameter surface for usage messages and
/// error hints (`tech=<current|projected> bits=<a positive integer>`),
/// or `no parameters` when it declares none. Shared by the CLI and the
/// HTTP service so their diagnostics never drift.
#[must_use]
pub fn params_usage(exp: &dyn Experiment) -> String {
    let params = exp.params();
    if params.is_empty() {
        return "no parameters".to_owned();
    }
    params
        .iter()
        .map(|p| format!("{}=<{}>", p.key, p.accepts()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Builds the [`ParamError::UnknownKey`] for `key` against an
/// experiment's declared parameters, with a did-you-mean suggestion.
#[must_use]
pub fn unknown_key(key: &str, params: &[Param]) -> ParamError {
    let valid: Vec<&'static str> = params.iter().map(|p| p.key).collect();
    ParamError::UnknownKey {
        key: key.to_owned(),
        suggestion: suggest(key, valid.iter().copied()),
        valid,
    }
}

/// Builds the [`ParamError::BadValue`] for a value `domain` rejected.
fn bad_value(key: &'static str, value: &str, domain: Domain) -> ParamError {
    ParamError::BadValue {
        key,
        value: value.to_owned(),
        accepts: domain.accepts(),
    }
}

/// Parses a [`TechPoint`] parameter value ([`Domain::Tech`]).
///
/// # Errors
///
/// [`ParamError::BadValue`] when the value is neither preset label.
pub fn parse_tech(key: &'static str, value: &str) -> Result<TechPoint, ParamError> {
    TechPoint::parse(value).ok_or_else(|| bad_value(key, value, Domain::Tech))
}

/// Parses a [`Code`] parameter value ([`Domain::Code`]).
///
/// # Errors
///
/// [`ParamError::BadValue`] when the value names neither code.
pub fn parse_code(key: &'static str, value: &str) -> Result<Code, ParamError> {
    Code::parse(value).ok_or_else(|| bad_value(key, value, Domain::Code))
}

/// Parses a positive integer parameter value ([`Domain::PosInt`], capped
/// at [`super::grid::MAX_INT`] — the same bound the grid/sweep grammars
/// enforce, so both layers accept exactly the same values).
///
/// # Errors
///
/// [`ParamError::BadValue`] when the value is not an integer in
/// `1..=`[`super::grid::MAX_INT`].
pub fn parse_positive(key: &'static str, value: &str) -> Result<u32, ParamError> {
    parse_pos_int(value).ok_or_else(|| bad_value(key, value, Domain::PosInt))
}

/// Parses a positive decimal parameter value ([`Domain::Ratio`]).
///
/// # Errors
///
/// [`ParamError::BadValue`] when the value is not a positive finite
/// decimal.
pub fn parse_ratio(key: &'static str, value: &str) -> Result<f64, ParamError> {
    parse_pos_ratio(value).ok_or_else(|| bad_value(key, value, Domain::Ratio))
}

/// Parses a [`CompileSource`] parameter value ([`Domain::Source`]).
///
/// # Errors
///
/// [`ParamError::BadValue`] when the value names neither source.
pub fn parse_source(key: &'static str, value: &str) -> Result<CompileSource, ParamError> {
    CompileSource::parse(value).ok_or_else(|| bad_value(key, value, Domain::Source))
}

/// The `accepts` string for technology-preset parameters.
pub const TECH_ACCEPTS: &str = "current|projected";

/// The `accepts` string for code parameters.
pub const CODE_ACCEPTS: &str = "steane|bacon-shor";

/// The `accepts` string for positive-integer parameters.
pub const INT_ACCEPTS: &str = "a positive integer";

/// The `accepts` string for ratio parameters.
pub const RATIO_ACCEPTS: &str = "a positive decimal";

/// The `accepts` string for compile program sources.
pub const SOURCE_ACCEPTS: &str = "inline-asm|random";

/// Every paper artifact, in the paper's presentation order: Tables 1–5,
/// Figures 2/6a/6b/7/8a/8b, then the `verify` self-checks, the `machine`
/// configuration pricer, and the `compile` program front end.
#[must_use]
pub fn registry() -> Vec<Box<dyn Experiment>> {
    use super::{
        Compile, Fig2, Fig6a, Fig6b, Fig7, Fig8a, Fig8b, Machine, Table1, Table2, Table3, Table4,
        Table5, Verify,
    };
    vec![
        Box::new(Table1),
        Box::new(Table2::default()),
        Box::new(Table3::default()),
        Box::new(Table4::default()),
        Box::new(Table5::default()),
        Box::new(Fig2::default()),
        Box::new(Fig6a::default()),
        Box::new(Fig6b::default()),
        Box::new(Fig7),
        Box::new(Fig8a::default()),
        Box::new(Fig8b::default()),
        Box::new(Verify),
        Box::new(Machine::default()),
        Box::new(Compile::default()),
    ]
}

/// Looks an artifact up by its stable id.
#[must_use]
pub fn find(id: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.id() == id)
}

/// The ids of every registered artifact, in registry order.
#[must_use]
pub fn ids() -> Vec<&'static str> {
    registry().iter().map(|e| e.id()).collect()
}

/// The registry listing as a JSON document: every artifact's id, title,
/// and parameter surface with defaults. This is the one shape both
/// `cqla list --format json` and the HTTP service's `/v1/experiments`
/// endpoint emit, so front ends can never drift apart.
#[must_use]
pub fn listing_json() -> Json {
    Json::obj([(
        "artifacts",
        Json::Arr(
            registry()
                .iter()
                .map(|exp| {
                    Json::obj([
                        ("id", Json::from(exp.id())),
                        ("title", Json::from(exp.title())),
                        (
                            "params",
                            Json::obj(
                                exp.params()
                                    .iter()
                                    .map(|p| (p.key.to_owned(), Json::from(p.value.as_str()))),
                            ),
                        ),
                        (
                            "accepts",
                            Json::obj(
                                exp.params()
                                    .iter()
                                    .map(|p| (p.key.to_owned(), Json::from(p.accepts()))),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Levenshtein edit distance, for did-you-mean suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest candidate to `input`, when close enough to plausibly be a
/// typo (edit distance ≤ 2, or ≤ ⌈len/3⌉ for longer inputs).
pub fn suggest<'a>(input: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    let budget = 2.max(input.chars().count().div_ceil(3));
    candidates
        .into_iter()
        .map(|c| (edit_distance(input, c), c))
        .filter(|&(d, _)| d <= budget)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let expected = [
            "table1", "table2", "table3", "table4", "table5", "fig2", "fig6a", "fig6b", "fig7",
            "fig8a", "fig8b", "verify", "machine", "compile",
        ];
        assert_eq!(ids(), expected);
    }

    #[test]
    fn find_is_id_addressed() {
        let title = find("fig6b").map(|e| e.title().to_owned());
        assert_eq!(title.as_deref(), Some("Figure 6b: superblock bandwidth"));
        assert!(find("fig9").is_none());
    }

    #[test]
    fn unknown_key_suggests_the_near_miss() {
        let mut t4 = find("table4").unwrap();
        let err = t4.set("tehc", "current").unwrap_err();
        match err {
            ParamError::UnknownKey { suggestion, .. } => assert_eq!(suggestion, Some("tech")),
            other => panic!("expected UnknownKey, got {other}"),
        }
    }

    #[test]
    fn suggest_rejects_distant_strings() {
        assert_eq!(suggest("table4", ["table4", "fig2"]), Some("table4"));
        assert_eq!(suggest("tabel4", ["table4", "fig2"]), Some("table4"));
        assert_eq!(suggest("zzzzzz", ["table4", "fig2"]), None);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }
}
