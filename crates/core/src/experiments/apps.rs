//! Generators for the paper's Figure 8: application communication vs
//! computation time (paper §6).
//!
//! Both panels use the Bacon-Shor code at level 2, as the paper does.
//! Computation time aggregates logical gate steps; communication time
//! aggregates qubit-transport steps (teleport execution plus the error
//! correction that re-establishes the moved qubit). The paper's point is
//! that communication *tracks but does not exceed* computation — which is
//! why the CQLA's interconnect can hide it.

use cqla_ecc::{Code, EccMetrics, Level};
use cqla_iontrap::{PhysicalOp, TechPoint, TechnologyParams};
use cqla_units::Seconds;
use cqla_workloads::{DraperAdder, ModExp, Qft};

use crate::json::ToJson;
use crate::report::{fmt3, TextTable};
use crate::specialize::SpecializationStudy;

use super::api::{parse_tech, unknown_key, Domain, Experiment, ExperimentOutput, Param};
use super::tables::primary_blocks;

/// One Figure 8 sample: total computation and communication time at one
/// problem size.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AppTimeRow {
    /// Problem size (adder bits for 8a, number size for 8b).
    pub size: u32,
    /// Total computation time.
    pub computation: Seconds,
    /// Total communication time.
    pub communication: Seconds,
}

impl AppTimeRow {
    /// Communication as a fraction of computation.
    #[must_use]
    pub fn comm_fraction(&self) -> f64 {
        self.communication / self.computation
    }
}

/// Per-qubit transport time: teleport execution plus the error-correction
/// work that re-integrates the qubit at its destination (1.5 EC
/// equivalents; see DESIGN.md §4).
fn transport_time(code: Code, tech: &TechnologyParams) -> Seconds {
    let m = EccMetrics::compute(code, Level::TWO, tech);
    m.teleport_time(tech) + m.ec_time() * 1.5
}

/// One Figure 8a sample: modular-exponentiation computation and
/// communication time at one adder size (Bacon-Shor).
///
/// Computation: each addition costs its block-constrained makespan; the
/// compute region pipelines `blocks` addition streams, so the aggregate is
/// `additions × adder_time / blocks`. Communication: per Toffoli, three
/// operand qubits are fed through the block's teleport channels, each
/// costing the EPR channel service of one logical qubit (two purification
/// rounds — short intra-processor hauls).
///
/// Exposed per size (not only as the full sweep) so the parallel
/// experiment engine can fan one job out per size and still produce rows
/// bitwise-identical to [`Fig8a`].
#[must_use]
pub fn fig8a_row(tech: &TechnologyParams, n: u32) -> AppTimeRow {
    let code = Code::BaconShor913;
    let study = SpecializationStudy::new(tech);
    let epr = cqla_network::EprModel::new(tech).with_purification_rounds(2);
    // EPR channel service per logical operand qubit.
    let per_qubit_service = epr.logical_service_time(code);
    let blocks = f64::from(primary_blocks(n));
    let me = ModExp::new(n);
    let makespan = study.ideal_makespan_units(n, primary_blocks(n));
    let adder_time = study.gate_step_time(code) * makespan as f64;
    let computation = adder_time * me.additions() as f64 / blocks;
    let toffolis = DraperAdder::new(n).circuit_ref().counts().toffoli;
    // Each block feeds its own Toffolis through its own channel group
    // (3 operands over `channels_required` channels), so the per-
    // addition communication is the per-block Toffoli share times the
    // per-operand channel service.
    let per_add_comm = per_qubit_service
        * (toffolis as f64 / blocks)
        * (cqla_network::OPERANDS_PER_TOFFOLI / f64::from(code.teleport_channels_required()));
    let communication = per_add_comm * me.additions() as f64 / blocks;
    AppTimeRow {
        size: n,
        computation,
        communication,
    }
}

/// The adder sizes Figure 8a sweeps.
pub const FIG8A_SIZES: [u32; 6] = [32, 64, 128, 256, 512, 1024];

/// Figure 8a as an experiment: modular exponentiation computation vs
/// communication time over adder sizes 32…1024 (Bacon-Shor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig8a {
    /// Technology operating point.
    pub tech: TechPoint,
}

impl Default for Fig8a {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
        }
    }
}

impl Fig8a {
    /// One sample per adder size, in sweep order.
    #[must_use]
    pub fn rows(&self) -> Vec<AppTimeRow> {
        let tech = self.tech.params();
        FIG8A_SIZES.iter().map(|&n| fig8a_row(&tech, n)).collect()
    }

    /// Renders the paper-style series (hours) for `rows`.
    #[must_use]
    pub fn render(rows: &[AppTimeRow]) -> String {
        render(rows, "adder size", true)
    }
}

impl Experiment for Fig8a {
    fn id(&self) -> &'static str {
        "fig8a"
    }

    fn title(&self) -> &'static str {
        "Figure 8a: modular exponentiation comm vs comp"
    }

    fn params(&self) -> Vec<Param> {
        vec![Param::new("tech", self.tech, Domain::Tech)]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        let rows = self.rows();
        ExperimentOutput::new(Self::render(&rows), rows.to_json())
    }
}

/// One Figure 8b sample: QFT computation and communication time at one
/// problem size (Bacon-Shor). Per-size twin of [`Fig8b`], for the
/// parallel engine.
#[must_use]
pub fn fig8b_row(tech: &TechnologyParams, n: u32) -> AppTimeRow {
    let code = Code::BaconShor913;
    let gate = EccMetrics::compute(code, Level::TWO, tech).transversal_gate_time()
        + tech.duration(PhysicalOp::DoubleGate);
    let transport = transport_time(code, tech);
    let qft = Qft::new(n);
    let computation = gate * qft.total_gates() as f64;
    // Every pair interaction between qubits in different compute
    // blocks moves one operand; blocks hold 9 qubits, so all but a
    // vanishing fraction of pairs cross blocks.
    let blocks = (f64::from(n) / 9.0).ceil();
    let within = blocks * (9.0 * 8.0 / 2.0);
    let crossing = qft.pair_interactions() as f64 - within;
    let communication = transport * crossing.max(0.0);
    AppTimeRow {
        size: n,
        computation,
        communication,
    }
}

/// The problem sizes Figure 8b sweeps.
pub const FIG8B_SIZES: [u32; 10] = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];

/// Figure 8b as an experiment: QFT computation vs communication time over
/// problem sizes 100…1000 (Bacon-Shor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig8b {
    /// Technology operating point.
    pub tech: TechPoint,
}

impl Default for Fig8b {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
        }
    }
}

impl Fig8b {
    /// One sample per problem size, in sweep order.
    #[must_use]
    pub fn rows(&self) -> Vec<AppTimeRow> {
        let tech = self.tech.params();
        FIG8B_SIZES.iter().map(|&n| fig8b_row(&tech, n)).collect()
    }

    /// Renders the paper-style series (seconds) for `rows`.
    #[must_use]
    pub fn render(rows: &[AppTimeRow]) -> String {
        render(rows, "problem size", false)
    }
}

impl Experiment for Fig8b {
    fn id(&self) -> &'static str {
        "fig8b"
    }

    fn title(&self) -> &'static str {
        "Figure 8b: QFT comm vs comp"
    }

    fn params(&self) -> Vec<Param> {
        vec![Param::new("tech", self.tech, Domain::Tech)]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        let rows = self.rows();
        ExperimentOutput::new(Self::render(&rows), rows.to_json())
    }
}

fn render(rows: &[AppTimeRow], label: &str, hours: bool) -> String {
    let unit = if hours { "hours" } else { "seconds" };
    let mut t = TextTable::new([
        label,
        &format!("computation ({unit})"),
        &format!("communication ({unit})"),
        "comm/comp",
    ]);
    for r in rows {
        let (c, m) = if hours {
            (r.computation.as_hours(), r.communication.as_hours())
        } else {
            (r.computation.as_secs(), r.communication.as_secs())
        };
        t.push_row([
            r.size.to_string(),
            fmt3(c),
            fmt3(m),
            fmt3(r.comm_fraction()),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_communication_tracks_but_never_exceeds_computation() {
        let rows = Fig8a::default().rows();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            let frac = r.comm_fraction();
            assert!(
                (0.1..1.0).contains(&frac),
                "size {}: comm fraction {frac}",
                r.size
            );
        }
        assert!(Fig8a::render(&rows).contains("hours"));
    }

    #[test]
    fn fig8a_times_grow_with_size_and_land_in_paper_scale() {
        let rows = Fig8a::default().rows();
        for pair in rows.windows(2) {
            assert!(pair[1].computation > pair[0].computation);
        }
        // Paper Fig 8a: hundreds of hours at 1024 bits.
        let last = rows.last().unwrap();
        let hours = last.computation.as_hours();
        assert!(
            (50.0..5_000.0).contains(&hours),
            "1024-bit modexp: {hours} h"
        );
    }

    #[test]
    fn fig8b_scale_matches_paper() {
        let rows = Fig8b::default().rows();
        // Paper Fig 8b: ~1e5 seconds at size 1000.
        let last = rows.last().unwrap();
        assert!(
            (2e4..5e5).contains(&last.computation.as_secs()),
            "computation {}",
            last.computation
        );
        for r in &rows {
            let frac = r.comm_fraction();
            assert!((0.3..1.0).contains(&frac), "size {}: {frac}", r.size);
        }
        assert!(Fig8b::render(&rows).contains("seconds"));
    }

    #[test]
    fn fig8b_grows_quadratically() {
        let rows = Fig8b::default().rows();
        let c100 = rows[0].computation.as_secs();
        let c1000 = rows[9].computation.as_secs();
        let ratio = c1000 / c100;
        assert!((50.0..200.0).contains(&ratio), "ratio {ratio}");
    }
}
