//! The `machine` artifact: price one CQLA configuration end to end.

use cqla_ecc::Code;
use cqla_iontrap::TechPoint;

use crate::eval::EvalCtx;
use crate::hierarchy::{HierarchyConfig, HierarchyStudy};
use crate::json::{Json, ToJson};
use crate::specialize::{CqlaConfig, SpecializationStudy};

use super::api::{
    parse_code, parse_positive, parse_ratio, parse_tech, unknown_key, Domain, Experiment,
    ExperimentOutput, Param,
};

/// Prices one CQLA configuration: the flat specialization (Table 4
/// quantities) plus the level-1 cache + compute hierarchy on top of it
/// (Table 5 quantities).
///
/// Defaults are the paper's headline machine: the 1024-bit Bacon-Shor
/// CQLA on 100 compute blocks with 10 parallel transfers and the 2×PE
/// cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Technology operating point.
    pub tech: TechPoint,
    /// Error-correcting code.
    pub code: Code,
    /// Input size in bits.
    pub bits: u32,
    /// Compute blocks.
    pub blocks: u32,
    /// Parallel memory↔cache transfers for the hierarchy view.
    pub xfer: u32,
    /// Cache capacity as a multiple of the compute-region qubits.
    pub cache: f64,
}

impl Default for Machine {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
            code: Code::BaconShor913,
            bits: 1024,
            blocks: 100,
            xfer: 10,
            cache: 2.0,
        }
    }
}

impl Experiment for Machine {
    fn id(&self) -> &'static str {
        "machine"
    }

    fn title(&self) -> &'static str {
        "Machine: price one CQLA configuration"
    }

    fn params(&self) -> Vec<Param> {
        vec![
            Param::new("tech", self.tech, Domain::Tech),
            Param::new("code", self.code.slug(), Domain::Code),
            Param::new("bits", self.bits, Domain::PosInt),
            Param::new("blocks", self.blocks, Domain::PosInt),
            Param::new("xfer", self.xfer, Domain::PosInt),
            Param::new("cache", self.cache, Domain::Ratio),
        ]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            "code" => self.code = parse_code("code", value)?,
            "bits" => self.bits = parse_positive("bits", value)?,
            "blocks" => self.blocks = parse_positive("blocks", value)?,
            "xfer" => self.xfer = parse_positive("xfer", value)?,
            "cache" => self.cache = parse_ratio("cache", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        self.run_ctx(&EvalCtx::new())
    }

    fn run_ctx(&self, ctx: &EvalCtx) -> ExperimentOutput {
        use std::fmt::Write as _;
        let tech = self.tech.params();
        let study = SpecializationStudy::new(&tech);
        let r = study.evaluate_ctx(CqlaConfig::new(self.code, self.bits, self.blocks), ctx);
        let mut hierarchy_config =
            HierarchyConfig::new(self.code, self.bits, self.xfer, self.blocks);
        hierarchy_config.cache_factor = self.cache;
        let h = HierarchyStudy::new(&tech).evaluate_ctx(hierarchy_config, ctx);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "CQLA: {}, {}-bit input, {} compute blocks",
            self.code, self.bits, self.blocks
        );
        let _ = writeln!(out, "  memory qubits     {}", r.config.memory_qubits());
        let _ = writeln!(out, "  area reduction    {:.2}x vs QLA", r.area_reduction);
        let _ = writeln!(
            out,
            "  adder speedup     {:.2}x vs maximally parallel QLA",
            r.speedup
        );
        let _ = writeln!(out, "  block utilization {:.0}%", r.utilization * 100.0);
        let _ = writeln!(out, "  adder time        {}", r.adder_time);
        let _ = writeln!(out, "  gain product      {:.1}", r.gain_product);
        let _ = writeln!(
            out,
            "with a level-1 cache + compute region ({} parallel transfers):",
            self.xfer
        );
        let _ = writeln!(out, "  cache hit rate    {:.0}%", h.cache_hit_rate * 100.0);
        let _ = writeln!(out, "  L1 region speedup {:.1}x over L2", h.l1_speedup);
        let _ = write!(
            out,
            "  adder speedup     {:.2}x … {:.2}x (policy bracket)",
            h.adder_speedup_interleave, h.adder_speedup_balanced
        );
        ExperimentOutput::new(
            out,
            Json::obj([("specialization", r.to_json()), ("hierarchy", h.to_json())]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_defaults_price_the_headline_configuration() {
        let out = Machine::default().run();
        assert!(out.passed);
        assert!(out.text.contains("area reduction"));
        assert!(out.text.contains("gain product"));
        assert!(out.data.get("specialization").is_some());
        assert!(out.data.get("hierarchy").is_some());
    }

    #[test]
    fn machine_parameters_apply() {
        let mut m = Machine::default();
        m.set("code", "steane").unwrap();
        m.set("bits", "128").unwrap();
        m.set("blocks", "16").unwrap();
        m.set("xfer", "5").unwrap();
        m.set("cache", "1.5").unwrap();
        assert_eq!(
            (m.code, m.bits, m.blocks, m.xfer),
            (Code::Steane713, 128, 16, 5)
        );
        assert!((m.cache - 1.5).abs() < 1e-12);
        assert!(m.set("bits", "0").is_err());
        assert!(m.set("code", "surface").is_err());
        assert!(m.set("cache", "-2").is_err());
    }

    #[test]
    fn cache_ratio_changes_the_hierarchy_view_only() {
        let default = Machine::default().run();
        let mut m = Machine::default();
        m.set("cache", "1").unwrap();
        let small = m.run();
        assert_eq!(
            default.data.get("specialization"),
            small.data.get("specialization"),
            "the flat study ignores the cache ratio"
        );
        assert_ne!(
            default.data.get("hierarchy"),
            small.data.get("hierarchy"),
            "the hierarchy study must see the cache ratio"
        );
    }
}
