//! The registry-driven grid grammar: `key=value-set` expressions parsed
//! against an experiment's declared [`ParamSpec`]s.
//!
//! Every [`super::Experiment`] declares typed parameters; this module
//! turns a textual expression like
//!
//! ```text
//! bits=32..=128:*2 cap=15,20 base.tech=current
//! ```
//!
//! into a [`Grid`]: a deterministic, submission-order list of parameter
//! assignments (points) over the experiment's paper-default base point.
//! The grammar is the same one the sweep-spec language uses — comma
//! lists, inclusive ranges `a..=b[:*k|:+k]`, spanned caret errors with
//! did-you-mean suggestions — but where `cqla-sweep::parse` hard-codes
//! its seven design-space axes, this layer accepts exactly the keys the
//! experiment's registry entry declares, each validated through the same
//! typed [`Domain`] that backs [`super::Experiment::set`]. A value that
//! parses here can therefore never be rejected by `set`, and vice versa.
//!
//! A clause `base.<key>=v` pins a single value without contributing an
//! axis: it is applied to every point, which is how table4/table5-style
//! "explicit point list over a shifted base" studies are written down
//! without a code-defined builtin.
//!
//! A parsed [`Grid`] round-trips: [`Grid::render`] prints it back as
//! expression text (range sugar expanded to comma lists) that
//! [`Grid::parse`] accepts and expands to the same points — the
//! property that lets sweep documents, HTTP job records, and CLI
//! transcripts all carry a grid as its `spec` string and reconstruct
//! it losslessly.
//!
//! The low-level machinery — [`SpecError`], [`words`], [`parse_items`],
//! [`parse_int_item`] and the typed set parsers — is shared with (and
//! was lifted out of) the sweep-spec parser, which is now a thin client
//! of this module.

use cqla_ecc::Code;
use cqla_iontrap::TechPoint;

use super::api::{suggest, Domain, ParamSpec};

/// Hard cap on the points one expression may expand to.
pub const MAX_POINTS: usize = 10_000;

/// Hard cap on any integer value (adders beyond this would not fit in
/// memory anyway). Shared by the grid grammar, the sweep-spec language,
/// and [`super::parse_positive`], so the three layers accept exactly the
/// same integers.
pub const MAX_INT: u32 = 1 << 20;

/// A parse error with the byte span of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The full expression text, kept for caret rendering.
    pub spec: String,
    /// Byte range `[start, end)` the error points at.
    pub span: (usize, usize),
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    /// Builds an error pointing at `span` within `spec`.
    #[must_use]
    pub fn new(spec: &str, span: (usize, usize), message: impl Into<String>) -> Self {
        Self {
            spec: spec.to_owned(),
            span,
            message: message.into(),
        }
    }
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (start, end) = self.span;
        writeln!(f, "spec error at {start}..{end}: {}", self.message)?;
        writeln!(f, "  {}", self.spec)?;
        let pad = self.spec[..start.min(self.spec.len())].chars().count();
        let width = self.spec[start.min(self.spec.len())..end.min(self.spec.len())]
            .chars()
            .count()
            .max(1);
        write!(f, "  {}{}", " ".repeat(pad), "^".repeat(width))
    }
}

impl std::error::Error for SpecError {}

/// One whitespace-delimited token with its byte span.
pub struct Word<'a> {
    /// The token text.
    pub text: &'a str,
    /// Byte offset of the token within the expression.
    pub start: usize,
}

/// Splits an expression into whitespace-delimited tokens with spans.
#[must_use]
pub fn words(input: &str) -> Vec<Word<'_>> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in input.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push(Word {
                    text: &input[s..i],
                    start: s,
                });
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push(Word {
            text: &input[s..],
            start: s,
        });
    }
    out
}

/// Splits `values` on commas (tracking spans) and parses each item with
/// `item`, flattening range expansions.
///
/// # Errors
///
/// A [`SpecError`] for an empty list or empty item, or whatever `item`
/// rejects.
pub fn parse_items<T>(
    spec: &str,
    values: &str,
    values_start: usize,
    mut item: impl FnMut(&str, (usize, usize)) -> Result<Vec<T>, SpecError>,
) -> Result<Vec<T>, SpecError> {
    if values.is_empty() {
        return Err(SpecError::new(
            spec,
            (values_start.saturating_sub(1), values_start),
            "expected at least one value after `=`",
        ));
    }
    let mut out = Vec::new();
    let mut offset = 0;
    for piece in values.split(',') {
        let span = (values_start + offset, values_start + offset + piece.len());
        if piece.is_empty() {
            return Err(SpecError::new(spec, span, "empty value in comma list"));
        }
        out.extend(item(piece, span)?);
        offset += piece.len() + 1;
    }
    Ok(out)
}

/// Parses one integer item: a plain value or an inclusive range
/// `a..=b[:*k|:+k]` (`*k` geometric, `+k` arithmetic, bare steps by one).
///
/// # Errors
///
/// A [`SpecError`] for out-of-range integers, exclusive-range syntax,
/// empty ranges, or bad steps.
pub fn parse_int_item(
    spec: &str,
    piece: &str,
    span: (usize, usize),
) -> Result<Vec<u32>, SpecError> {
    let int = |text: &str| -> Result<u32, SpecError> {
        text.parse::<u32>()
            .ok()
            .filter(|&n| (1..=MAX_INT).contains(&n))
            .ok_or_else(|| {
                SpecError::new(
                    spec,
                    span,
                    format!("bad value `{text}`; expected an integer in 1..={MAX_INT}"),
                )
            })
    };
    let Some(dots) = piece.find("..=") else {
        if piece.contains("..") {
            return Err(SpecError::new(
                spec,
                span,
                format!("bad range `{piece}`; ranges are inclusive: `a..=b[:*k|:+k]`"),
            ));
        }
        return Ok(vec![int(piece)?]);
    };
    let start = int(&piece[..dots])?;
    let rest = &piece[dots + 3..];
    let (end_text, step_text) = match rest.find(':') {
        Some(colon) => (&rest[..colon], Some(&rest[colon + 1..])),
        None => (rest, None),
    };
    let end = int(end_text)?;
    if start > end {
        return Err(SpecError::new(
            spec,
            span,
            format!("empty range `{piece}`; start {start} exceeds end {end}"),
        ));
    }
    enum Step {
        Mul(u32),
        Add(u32),
    }
    let step = match step_text {
        None => Step::Add(1),
        Some(s) if s.starts_with('*') => {
            let k = int(&s[1..])?;
            if k < 2 {
                return Err(SpecError::new(
                    spec,
                    span,
                    "geometric step must be >= 2 (e.g. `64..=512:*2`)",
                ));
            }
            Step::Mul(k)
        }
        Some(s) if s.starts_with('+') => Step::Add(int(&s[1..])?),
        Some(s) => {
            return Err(SpecError::new(
                spec,
                span,
                format!("bad step `{s}`; expected `*k` (geometric) or `+k` (arithmetic)"),
            ));
        }
    };
    let mut out = Vec::new();
    let mut v = start;
    loop {
        out.push(v);
        let next = match step {
            Step::Mul(k) => v.checked_mul(k),
            Step::Add(k) => v.checked_add(k),
        };
        match next {
            Some(n) if n <= end => v = n,
            _ => break,
        }
    }
    Ok(out)
}

/// Parses a technology value set (comma list of preset labels).
///
/// # Errors
///
/// A [`SpecError`] naming the unknown preset.
pub fn parse_tech_set(
    spec: &str,
    values: &str,
    values_start: usize,
) -> Result<Vec<TechPoint>, SpecError> {
    parse_items(spec, values, values_start, |piece, span| {
        TechPoint::parse(piece).map(|t| vec![t]).ok_or_else(|| {
            SpecError::new(
                spec,
                span,
                format!("unknown technology `{piece}`; expected current|projected"),
            )
        })
    })
}

/// Parses a code value set (comma list of code slugs).
///
/// # Errors
///
/// A [`SpecError`] naming the unknown code.
pub fn parse_code_set(
    spec: &str,
    values: &str,
    values_start: usize,
) -> Result<Vec<Code>, SpecError> {
    parse_items(spec, values, values_start, |piece, span| {
        Code::parse(piece).map(|c| vec![c]).ok_or_else(|| {
            SpecError::new(
                spec,
                span,
                format!("unknown code `{piece}`; expected steane|bacon-shor"),
            )
        })
    })
}

/// Parses an integer value set (comma list of values and ranges).
///
/// # Errors
///
/// A [`SpecError`] from [`parse_int_item`].
pub fn parse_int_set(spec: &str, values: &str, values_start: usize) -> Result<Vec<u32>, SpecError> {
    parse_items(spec, values, values_start, |piece, span| {
        parse_int_item(spec, piece, span)
    })
}

/// Parses a positive-decimal value set; `noun` names the quantity in the
/// error message (`"cache ratio"`, `"ratio"`, …).
///
/// # Errors
///
/// A [`SpecError`] naming the rejected decimal.
pub fn parse_ratio_set(
    spec: &str,
    values: &str,
    values_start: usize,
    noun: &str,
) -> Result<Vec<f64>, SpecError> {
    parse_items(spec, values, values_start, |piece, span| {
        super::api::parse_pos_ratio(piece)
            .map(|x| vec![x])
            .ok_or_else(|| {
                SpecError::new(
                    spec,
                    span,
                    format!("bad {noun} `{piece}`; expected a positive decimal"),
                )
            })
    })
}

/// Parses one value set in `domain`, returning the validated values as
/// strings ready to feed [`super::Experiment::set`]. Integer ranges are
/// expanded; labels and decimals keep the user's spelling (which `set`
/// accepts by construction — both layers validate through [`Domain`]).
///
/// # Errors
///
/// A [`SpecError`] pointing at the rejected item.
pub fn parse_value_set(
    spec: &str,
    domain: Domain,
    values: &str,
    values_start: usize,
) -> Result<Vec<String>, SpecError> {
    match domain {
        Domain::Tech => parse_tech_set(spec, values, values_start)
            .map(|v| v.iter().map(|t| t.label().to_owned()).collect()),
        Domain::Code => parse_code_set(spec, values, values_start)
            .map(|v| v.iter().map(|c| c.slug().to_owned()).collect()),
        Domain::PosInt => parse_int_set(spec, values, values_start)
            .map(|v| v.iter().map(u32::to_string).collect()),
        Domain::Ratio => parse_items(spec, values, values_start, |piece, span| {
            // Validate as a decimal but keep the user's spelling:
            // `1.50` and `1.5` are the same value and both parse in
            // `set` (the same `admits` predicate backs it).
            if Domain::Ratio.admits(piece) {
                Ok(vec![piece.to_owned()])
            } else {
                Err(SpecError::new(
                    spec,
                    span,
                    format!("bad ratio `{piece}`; expected a positive decimal"),
                ))
            }
        }),
        Domain::Source => parse_items(spec, values, values_start, |piece, span| {
            if Domain::Source.admits(piece) {
                Ok(vec![piece.to_owned()])
            } else {
                Err(SpecError::new(
                    spec,
                    span,
                    format!("unknown source `{piece}`; expected inline-asm|random"),
                ))
            }
        }),
    }
}

/// Whether one `key=value` override uses value-*set* syntax — a comma
/// list, a range, or a `base.` pin — and therefore selects a grid run
/// rather than a single-value run. The one predicate every front end
/// (CLI `run`, HTTP `/v1/run/{id}`) consults, so they can never drift
/// on which requests grid out: plain `key=value` overrides stay on the
/// byte-identical single-run path. Matches bare `..` (not just `..=`)
/// so the exclusive-range typo `32..128` reaches the grammar's
/// "ranges are inclusive" diagnostic; no valid single value in any
/// domain contains `..`.
#[must_use]
pub fn is_set_clause(key: &str, value: &str) -> bool {
    key.starts_with("base.") || value.contains(',') || value.contains("..")
}

/// A parsed grid over one experiment: pinned `base.` overrides plus the
/// value-set axes, in clause order.
///
/// # Examples
///
/// ```
/// use cqla_core::experiments::{find, grid::Grid};
///
/// let exp = find("fig2").unwrap();
/// let grid = Grid::parse("fig2", &exp.specs(), "bits=32..=128:*2").unwrap();
/// assert_eq!(grid.len(), 3);
/// assert_eq!(grid.points()[1], [("bits".to_owned(), "64".to_owned())]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    id: String,
    spec: String,
    base: Vec<(String, String)>,
    axes: Vec<(String, Vec<String>)>,
}

impl Grid {
    /// Parses a `key=value-set` expression against the declared
    /// parameter surface of experiment `id`. An empty expression is the
    /// single paper-default point.
    ///
    /// # Errors
    ///
    /// A spanned [`SpecError`]: unknown or duplicate keys (with
    /// did-you-mean suggestions), values outside the key's domain,
    /// multi-value `base.` clauses, or a grid past [`MAX_POINTS`].
    pub fn parse(id: &str, specs: &[ParamSpec], input: &str) -> Result<Self, SpecError> {
        let mut base: Vec<(String, String)> = Vec::new();
        let mut axes: Vec<(String, Vec<String>)> = Vec::new();
        let mut seen: Vec<&str> = Vec::new();
        for word in words(input) {
            let Some(eq) = word.text.find('=') else {
                return Err(SpecError::new(
                    input,
                    (word.start, word.start + word.text.len()),
                    "expected a `key=values` clause (e.g. `bits=32..=128:*2`)",
                ));
            };
            let raw_key = &word.text[..eq];
            let key_span = (word.start, word.start + eq);
            let (key, pinned) = match raw_key.strip_prefix("base.") {
                Some(rest) => (rest, true),
                None => (raw_key, false),
            };
            let Some(spec) = specs.iter().find(|s| s.key == key) else {
                return Err(SpecError::new(
                    input,
                    key_span,
                    unknown_parameter(key, specs),
                ));
            };
            if seen.contains(&spec.key) {
                return Err(SpecError::new(
                    input,
                    key_span,
                    format!("duplicate parameter `{key}`"),
                ));
            }
            seen.push(spec.key);
            let values = &word.text[eq + 1..];
            let values_start = word.start + eq + 1;
            let parsed = parse_value_set(input, spec.domain, values, values_start)?;
            if pinned {
                if parsed.len() != 1 {
                    return Err(SpecError::new(
                        input,
                        (values_start, values_start + values.len()),
                        format!("base.{key} pins exactly one value, got {}", parsed.len()),
                    ));
                }
                base.push((spec.key.to_owned(), parsed.into_iter().next().unwrap()));
            } else {
                axes.push((spec.key.to_owned(), parsed));
            }
        }
        let points = axes
            .iter()
            .try_fold(1usize, |acc, (_, values)| acc.checked_mul(values.len()));
        match points {
            Some(points) if points <= MAX_POINTS => {}
            _ => {
                let shown =
                    points.map_or_else(|| format!("over {}", usize::MAX), |p| p.to_string());
                return Err(SpecError::new(
                    input,
                    (0, input.len()),
                    format!("grid expands to {shown} points; the cap is {MAX_POINTS}"),
                ));
            }
        }
        Ok(Self {
            id: id.to_owned(),
            spec: input.trim().to_owned(),
            base,
            axes,
        })
    }

    /// The experiment id the grid runs.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The (trimmed) expression text the grid was parsed from.
    #[must_use]
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Whether any clause used value-set syntax (more than one value on
    /// some axis) or pinned a `base.` override — i.e. whether this is a
    /// real grid rather than a plain single-value run.
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.base.is_empty() && self.axes.iter().all(|(_, v)| v.len() == 1)
    }

    /// Number of points the grid expands to (1 for the empty expression).
    #[must_use]
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// Whether the grid has no points. Never true for a parsed grid —
    /// the grammar rejects empty value sets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The parameter assignments, in deterministic submission order:
    /// `base.` overrides first (clause order), then one `key=value` pair
    /// per axis, later clauses varying fastest — exactly like nested
    /// `for` loops, and exactly like the sweep engine orders its points.
    #[must_use]
    pub fn points(&self) -> Vec<Vec<(String, String)>> {
        let mut points = vec![self.base.clone()];
        for (key, values) in &self.axes {
            points = points
                .into_iter()
                .flat_map(|p| {
                    values.iter().map(move |v| {
                        let mut q = p.clone();
                        q.push((key.clone(), v.clone()));
                        q
                    })
                })
                .collect();
        }
        points
    }

    /// Renders the grid back into expression text: the inverse of
    /// [`Grid::parse`] up to range sugar (expanded values render as
    /// comma lists).
    ///
    /// ```
    /// use cqla_core::experiments::{find, grid::Grid};
    ///
    /// let exp = find("fig2").unwrap();
    /// let grid = Grid::parse("fig2", &exp.specs(), "cap=15 bits=32..=128:*2").unwrap();
    /// assert_eq!(grid.render(), "cap=15 bits=32,64,128");
    /// let again = Grid::parse("fig2", &exp.specs(), &grid.render()).unwrap();
    /// assert_eq!(grid.points(), again.points());
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let base = self.base.iter().map(|(k, v)| format!("base.{k}={v}"));
        let axes = self
            .axes
            .iter()
            .map(|(k, values)| format!("{k}={}", values.join(",")));
        base.chain(axes).collect::<Vec<_>>().join(" ")
    }

    /// Splits the grid into at most `n` sub-grids of **contiguous
    /// submission-order points**: concatenating the shards'
    /// [`Grid::points`] in order reproduces this grid's [`Grid::points`]
    /// exactly, with no point duplicated or dropped. Each shard is a
    /// complete grid in its own right — its `spec` is its own
    /// [`Grid::render`] output, so a shard can travel as expression text
    /// (to a `cqla serve` worker, say) and re-parse to the same points.
    ///
    /// Splitting is near-even: shard sizes differ by at most a factor
    /// bounded by the axis structure (a contiguous *box* of the
    /// cartesian product cannot always be cut into equal volumes), and
    /// exactly `min(n, len)` shards are returned — every shard is
    /// non-empty.
    ///
    /// ```
    /// use cqla_core::experiments::{find, grid::Grid};
    ///
    /// let exp = find("fig2").unwrap();
    /// let grid = Grid::parse("fig2", &exp.specs(), "bits=8,16,24 cap=4,8").unwrap();
    /// let shards = grid.shard(3);
    /// assert_eq!(shards.len(), 3);
    /// let merged: Vec<_> = shards.iter().flat_map(|s| s.points()).collect();
    /// assert_eq!(merged, grid.points());
    /// assert_eq!(shards[0].spec(), "bits=8 cap=4,8");
    /// ```
    #[must_use]
    pub fn shard(&self, n: usize) -> Vec<Self> {
        let n = n.clamp(1, self.len().max(1));
        split_axes(&self.axes, n)
            .into_iter()
            .map(|axes| {
                let mut shard = Self {
                    id: self.id.clone(),
                    spec: String::new(),
                    base: self.base.clone(),
                    axes,
                };
                shard.spec = shard.render();
                shard
            })
            .collect()
    }
}

/// Splits cartesian axes into at most `n` contiguous boxes whose point
/// lists concatenate to the parent's, in order. If the first axis has at
/// least `n` values, its values split into `n` contiguous near-equal
/// groups (later axes untouched — later clauses vary fastest, so a
/// contiguous value group is a contiguous point range). Otherwise every
/// value gets its own box and the budget recurses into the remaining
/// axes, distributed near-evenly.
fn split_axes(axes: &[(String, Vec<String>)], n: usize) -> Vec<Vec<(String, Vec<String>)>> {
    if n <= 1 || axes.is_empty() {
        return vec![axes.to_vec()];
    }
    let (key, values) = &axes[0];
    let rest = &axes[1..];
    if values.len() >= n {
        let mut out = Vec::with_capacity(n);
        let mut taken = 0;
        for i in 0..n {
            let size = values.len() / n + usize::from(i < values.len() % n);
            let group = values[taken..taken + size].to_vec();
            taken += size;
            let mut shard = vec![(key.clone(), group)];
            shard.extend(rest.iter().cloned());
            out.push(shard);
        }
        out
    } else {
        let k = values.len();
        let mut out = Vec::new();
        for (i, value) in values.iter().enumerate() {
            let budget = n / k + usize::from(i < n % k);
            for sub in split_axes(rest, budget.max(1)) {
                let mut shard = vec![(key.clone(), vec![value.clone()])];
                shard.extend(sub);
                out.push(shard);
            }
        }
        out
    }
}

/// The unknown-parameter message, word for word the one
/// [`super::ParamError::UnknownKey`] displays, so grid and single-value
/// diagnostics read the same.
fn unknown_parameter(key: &str, specs: &[ParamSpec]) -> String {
    let mut message = format!("unknown parameter `{key}`");
    if let Some(s) = suggest(key, specs.iter().map(|s| s.key)) {
        message = format!("{message} (did you mean `{s}`?)");
    }
    if specs.is_empty() {
        format!("{message}; this experiment takes no parameters")
    } else {
        let valid: Vec<&str> = specs.iter().map(|s| s.key).collect();
        format!("{message}; valid: {}", valid.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::find;

    fn specs(id: &str) -> Vec<ParamSpec> {
        find(id).unwrap().specs()
    }

    #[test]
    fn issue_headline_grid_parses() {
        let grid = Grid::parse("fig2", &specs("fig2"), "bits=32..=128:*2").unwrap();
        assert_eq!(grid.len(), 3);
        assert!(!grid.is_single());
        let points = grid.points();
        assert_eq!(points[0], [("bits".to_owned(), "32".to_owned())]);
        assert_eq!(points[2], [("bits".to_owned(), "128".to_owned())]);
    }

    #[test]
    fn later_clauses_vary_fastest() {
        let grid = Grid::parse("fig2", &specs("fig2"), "bits=32,64 cap=15,20").unwrap();
        let points = grid.points();
        assert_eq!(points.len(), 4);
        assert_eq!(
            points[1],
            [
                ("bits".to_owned(), "32".to_owned()),
                ("cap".to_owned(), "20".to_owned())
            ]
        );
        assert_eq!(points[2][0].1, "64");
    }

    #[test]
    fn base_overrides_pin_a_single_value_on_every_point() {
        let grid = Grid::parse(
            "machine",
            &specs("machine"),
            "base.tech=current bits=64,128",
        )
        .unwrap();
        assert_eq!(grid.len(), 2);
        for point in grid.points() {
            assert_eq!(point[0], ("tech".to_owned(), "current".to_owned()));
        }
        let err =
            Grid::parse("machine", &specs("machine"), "base.tech=current,projected").unwrap_err();
        assert!(err.message.contains("pins exactly one value"), "{err}");
    }

    #[test]
    fn empty_expression_is_the_single_default_point() {
        let grid = Grid::parse("fig2", &specs("fig2"), "").unwrap();
        assert_eq!(grid.len(), 1);
        assert!(grid.is_single());
        assert_eq!(grid.points(), [Vec::new()]);
    }

    #[test]
    fn unknown_and_duplicate_keys_are_spanned() {
        let err = Grid::parse("fig2", &specs("fig2"), "bits=64 bist=32").unwrap_err();
        assert_eq!(err.span, (8, 12));
        assert!(err.message.contains("did you mean `bits`?"), "{err}");
        assert!(err.message.contains("valid: bits, cap"), "{err}");
        let err = Grid::parse("fig2", &specs("fig2"), "bits=64 base.bits=32").unwrap_err();
        assert!(err.message.contains("duplicate parameter `bits`"), "{err}");
        let err = Grid::parse("verify", &[], "bits=64").unwrap_err();
        assert!(err.message.contains("takes no parameters"), "{err}");
    }

    #[test]
    fn values_validate_through_the_declared_domain() {
        let err = Grid::parse("table4", &specs("table4"), "tech=currant").unwrap_err();
        assert!(err.message.contains("unknown technology"), "{err}");
        let err = Grid::parse("machine", &specs("machine"), "code=surface").unwrap_err();
        assert!(err.message.contains("unknown code"), "{err}");
        let err = Grid::parse("machine", &specs("machine"), "cache=-1").unwrap_err();
        assert!(err.message.contains("positive decimal"), "{err}");
        let err = Grid::parse("fig2", &specs("fig2"), "bits=0").unwrap_err();
        assert!(err.message.contains("expected an integer in 1..="), "{err}");
        let err = Grid::parse("fig2", &specs("fig2"), "notakeyvalue").unwrap_err();
        assert!(err.message.contains("key=values"), "{err}");
    }

    #[test]
    fn point_explosion_is_capped() {
        let err = Grid::parse(
            "machine",
            &specs("machine"),
            "bits=1..=200 blocks=1..=200 xfer=1..=10",
        )
        .unwrap_err();
        assert!(err.message.contains("cap is 10000"), "{err}");
        // Maxed-out ranges go through the checked product, not a wrap.
        let err = Grid::parse(
            "machine",
            &specs("machine"),
            "bits=1..=1048576 blocks=1..=1048576 xfer=1..=1048576",
        )
        .unwrap_err();
        assert!(err.message.contains("cap is 10000"), "{err}");
    }

    #[test]
    fn render_round_trips() {
        let grid = Grid::parse(
            "machine",
            &specs("machine"),
            "base.code=steane tech=current,projected bits=64..=256:*2 cache=0.5,1.25",
        )
        .unwrap();
        let rendered = grid.render();
        assert_eq!(
            rendered,
            "base.code=steane tech=current,projected bits=64,128,256 cache=0.5,1.25"
        );
        let again = Grid::parse("machine", &specs("machine"), &rendered).unwrap();
        assert_eq!(grid.points(), again.points());
    }

    #[test]
    fn shards_concatenate_to_the_parent_points_in_order() {
        let grid = Grid::parse(
            "machine",
            &specs("machine"),
            "base.code=steane tech=current,projected bits=32,64,128 cache=0.5,1.0,1.5",
        )
        .unwrap();
        for n in 1..=grid.len() + 3 {
            let shards = grid.shard(n);
            assert_eq!(shards.len(), n.min(grid.len()), "n={n}");
            let merged: Vec<_> = shards.iter().flat_map(Grid::points).collect();
            assert_eq!(merged, grid.points(), "n={n}");
            for shard in &shards {
                assert!(!shard.is_empty(), "n={n}");
                assert_eq!(shard.id(), grid.id(), "n={n}");
                // A shard's spec is its own render, and re-parses to the
                // same points — the property that lets it travel as text.
                assert_eq!(shard.spec(), shard.render(), "n={n}");
                let again = Grid::parse("machine", &specs("machine"), shard.spec()).unwrap();
                assert_eq!(again.points(), shard.points(), "n={n}");
            }
        }
    }

    #[test]
    fn sharding_degenerate_grids_is_safe() {
        // A single-point grid yields one shard no matter the request.
        let single = Grid::parse("fig2", &specs("fig2"), "bits=64").unwrap();
        assert_eq!(single.shard(5).len(), 1);
        assert_eq!(single.shard(0).len(), 1);
        assert_eq!(single.shard(5)[0].points(), single.points());
        // The empty expression (one default point) likewise.
        let empty = Grid::parse("fig2", &specs("fig2"), "").unwrap();
        let shards = empty.shard(3);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].points(), empty.points());
        // base-only grids keep their pins on every shard.
        let pinned =
            Grid::parse("machine", &specs("machine"), "base.tech=current bits=32,64").unwrap();
        for shard in pinned.shard(2) {
            assert!(
                shard.spec().starts_with("base.tech=current"),
                "{}",
                shard.spec()
            );
        }
    }

    #[test]
    fn shard_splits_are_near_even_on_the_first_axis() {
        let grid = Grid::parse("fig2", &specs("fig2"), "bits=1..=10").unwrap();
        let sizes: Vec<usize> = grid.shard(3).iter().map(Grid::len).collect();
        assert_eq!(sizes, [4, 3, 3]);
    }

    #[test]
    fn every_grid_value_is_accepted_by_set() {
        // The dedupe contract: anything the grid grammar admits, the
        // experiment's own `set` admits too.
        let grid = Grid::parse(
            "machine",
            &specs("machine"),
            "tech=current code=bacon-shor bits=32..=64:+16 cache=1.5 base.xfer=5",
        )
        .unwrap();
        for point in grid.points() {
            let mut exp = find("machine").unwrap();
            for (key, value) in &point {
                exp.set(key, value)
                    .unwrap_or_else(|e| panic!("set({key}, {value}): {e}"));
            }
        }
    }
}
