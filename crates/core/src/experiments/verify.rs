//! The `verify` artifact: the built-in self-checks behind `cqla verify`.

use cqla_stabilizer::{CssCode, LookupDecoder, PauliOp, PauliString};
use cqla_workloads::DraperAdder;

use crate::json::{Json, ToJson};

use super::api::{Experiment, ExperimentOutput};

/// Runs the built-in self-checks: adder correctness and weight-1 error
/// correction for every CSS code. The only registry entry whose output
/// can report `passed: false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Verify;

impl Verify {
    /// The named checks with their verdicts, in print order.
    #[must_use]
    pub fn checks(&self) -> Vec<(String, bool)> {
        let mut checks = Vec::new();
        // Adder correctness spot-check.
        let adder = DraperAdder::new(32);
        let ok_adder = adder.compute_checked(0xDEAD_BEEF, 0x1234_5678) == 0xDEAD_BEEF + 0x1234_5678;
        checks.push(("draper adder 32-bit".to_owned(), ok_adder));
        // Code distance spot-check: every weight-1 error decodes to a
        // logically trivial residue.
        for code in [CssCode::steane(), CssCode::shor9(), CssCode::bacon_shor()] {
            let decoder = LookupDecoder::for_code(&code);
            let mut ok = true;
            for q in 0..code.num_qubits() {
                for op in PauliOp::ERRORS {
                    let e = PauliString::single(code.num_qubits(), q, op);
                    let fix = decoder.decode(&code.syndrome(&e));
                    ok &= fix.is_some_and(|f| code.is_logically_trivial(&e.mul(&f)));
                }
            }
            checks.push((format!("{code}: weight-1 correction"), ok));
        }
        checks
    }
}

impl Experiment for Verify {
    fn id(&self) -> &'static str {
        "verify"
    }

    fn title(&self) -> &'static str {
        "Verify: built-in self-checks"
    }

    fn run(&self) -> ExperimentOutput {
        let checks = self.checks();
        let text = checks
            .iter()
            .map(|(name, ok)| format!("{name}: {}", if *ok { "ok" } else { "FAIL" }))
            .collect::<Vec<_>>()
            .join("\n");
        let data = Json::obj([(
            "checks",
            Json::Arr(
                checks
                    .iter()
                    .map(|(name, ok)| {
                        Json::obj([("name", Json::from(name.as_str())), ("ok", ok.to_json())])
                    })
                    .collect(),
            ),
        )]);
        ExperimentOutput {
            text,
            data,
            passed: checks.iter().all(|&(_, ok)| ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_passes_and_names_every_check() {
        let out = Verify.run();
        assert!(out.passed);
        assert!(out.text.contains("draper adder 32-bit: ok"));
        assert!(!out.text.contains("FAIL"));
        let checks = out.data.get("checks").unwrap().as_arr().unwrap();
        assert_eq!(checks.len(), 4);
    }
}
