//! The `compile` artifact: compile a user-submitted program into the
//! paper-style latency/area/fidelity artifact.
//!
//! This is the first registry entry whose input is a *program* rather
//! than a parameter tuple: the circuit comes either from inline asm text
//! (the CLI's `cqla compile FILE`, HTTP's `POST /v1/compile` body) or
//! from the seeded Clifford+T generator in [`cqla_compile::random`]
//! (`source=random`, reproducible by `seed=`). Either way the pipeline
//! is `parse → decompose Toffolis → dependency DAG → list-schedule under
//! the width budget → hierarchy placement`, priced with the same
//! memoized [`EvalCtx`] machinery the paper tables use.

use cqla_circuit::{decompose_toffolis, Circuit, QubitId};
use cqla_compile::{random::random_circuit, SAMPLE_PROGRAM};
use cqla_ecc::{Code, Level};
use cqla_iontrap::TechPoint;

use crate::area::BLOCK_DATA_QUBITS;
use crate::cache::{CacheSim, FetchPolicy};
use crate::eval::EvalCtx;
use crate::json::Json;

use super::api::{
    parse_code, parse_positive, parse_ratio, parse_source, parse_tech, unknown_key, Domain,
    Experiment, ExperimentOutput, Param,
};

/// Where the `compile` experiment's program comes from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CompileSource {
    /// The seeded random Clifford+T generator (`seed=`, `qubits=`,
    /// `gates=` apply).
    #[default]
    Random,
    /// Inline asm text: the `program` override, an asm file on the CLI,
    /// or an HTTP request body. Without a program, compiles
    /// [`SAMPLE_PROGRAM`].
    InlineAsm,
}

impl CompileSource {
    /// Parses a source slug (`inline-asm` or `random`).
    #[must_use]
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "random" => Some(Self::Random),
            "inline-asm" => Some(Self::InlineAsm),
            _ => None,
        }
    }

    /// The stable slug (`random` / `inline-asm`).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Self::Random => "random",
            Self::InlineAsm => "inline-asm",
        }
    }
}

impl core::fmt::Display for CompileSource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.slug())
    }
}

/// Compiles one program into the paper's schedule + hierarchy metrics.
///
/// Defaults compile a generated 16-qubit, 256-gate Clifford+T workload
/// (seed 1) onto the Table 4 Steane machine width of 9 compute blocks
/// with the 2× cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Compile {
    /// Technology operating point.
    pub tech: TechPoint,
    /// Error-correcting code.
    pub code: Code,
    /// Compute-block width budget for the list schedule.
    pub width: u32,
    /// Cache capacity as a multiple of the compute-region qubits.
    pub cache: f64,
    /// Generator seed (`source=random`).
    pub seed: u32,
    /// Generated register size (`source=random`).
    pub qubits: u32,
    /// Generated gate count (`source=random`).
    pub gates: u32,
    /// Where the program comes from.
    pub source: CompileSource,
    /// Inline asm text (`source=inline-asm`); [`SAMPLE_PROGRAM`] when
    /// absent. Set via the undeclared `program` override — front ends
    /// pass files/bodies through it.
    pub program: Option<String>,
}

impl Default for Compile {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
            code: Code::Steane713,
            width: 9,
            cache: 2.0,
            seed: 1,
            qubits: 16,
            gates: 256,
            source: CompileSource::Random,
            program: None,
        }
    }
}

impl Compile {
    /// Resolves the program circuit from the configured source.
    ///
    /// # Errors
    ///
    /// The spanned parse error for inline asm that does not parse.
    fn resolve_program(&self) -> Result<Circuit, cqla_circuit::asm::ParseAsmError> {
        match self.source {
            CompileSource::Random => Ok(random_circuit(
                self.qubits,
                self.gates,
                u64::from(self.seed),
            )),
            CompileSource::InlineAsm => {
                cqla_circuit::asm::parse(self.program.as_deref().unwrap_or(SAMPLE_PROGRAM))
            }
        }
    }
}

impl Experiment for Compile {
    fn id(&self) -> &'static str {
        "compile"
    }

    fn title(&self) -> &'static str {
        "Compile: price a user-submitted program on the CQLA"
    }

    fn params(&self) -> Vec<Param> {
        vec![
            Param::new("tech", self.tech, Domain::Tech),
            Param::new("code", self.code.slug(), Domain::Code),
            Param::new("width", self.width, Domain::PosInt),
            Param::new("cache", self.cache, Domain::Ratio),
            Param::new("seed", self.seed, Domain::PosInt),
            Param::new("qubits", self.qubits, Domain::PosInt),
            Param::new("gates", self.gates, Domain::PosInt),
            Param::new("source", self.source, Domain::Source),
        ]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            "code" => self.code = parse_code("code", value)?,
            "width" => self.width = parse_positive("width", value)?,
            "cache" => self.cache = parse_ratio("cache", value)?,
            "seed" => self.seed = parse_positive("seed", value)?,
            "qubits" => self.qubits = parse_positive("qubits", value)?,
            "gates" => self.gates = parse_positive("gates", value)?,
            "source" => self.source = parse_source("source", value)?,
            // Undeclared pass-through: the program text itself. Validated
            // at run time (front ends pre-validate for spanned errors).
            "program" => self.program = Some(value.to_owned()),
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        self.run_ctx(&EvalCtx::new())
    }

    fn run_ctx(&self, ctx: &EvalCtx) -> ExperimentOutput {
        use std::fmt::Write as _;
        let program = match self.resolve_program() {
            Ok(p) => p,
            Err(err) => {
                // Front ends validate first and render the caret
                // diagnostic; this path is the safety net that keeps a
                // bad `program=` override from panicking anything.
                let data = Json::obj([
                    ("error", Json::from(err.to_string())),
                    (
                        "hint",
                        err.hint().map_or(Json::Null, |h| Json::from(h.to_owned())),
                    ),
                ]);
                let mut out = ExperimentOutput::new(err.to_string(), data);
                out.passed = false;
                return out;
            }
        };
        let tech = self.tech.params();
        let lowered = decompose_toffolis(&program);
        let costs = ctx.compiled_costs(&lowered, self.width);

        // Latency: every step of the schedule is one logical gate step.
        // L2 prices all steps at level 2; the mixed bound lets the Eq. 1
        // level-1 share of steps run in the fast compute region.
        let t1 = ctx.gate_step_time(self.code, Level::ONE, &tech);
        let t2 = ctx.gate_step_time(self.code, Level::TWO, &tech);
        let share = ctx.level1_share(self.code, &tech, program.num_qubits());
        let steps = costs.makespan as f64;
        let latency_l2 = t2 * steps;
        let latency_mixed = (t1 * share + t2 * (1.0 - share)) * steps;

        // Cache: the hierarchy's capacity rule (cache × compute-region
        // data qubits), cold + warm passes over the lowered stream with
        // every program input memory-resident.
        let compute_qubits = BLOCK_DATA_QUBITS * u64::from(self.width);
        let capacity = (self.cache * compute_qubits as f64).round().max(1.0) as usize;
        let inputs: Vec<QubitId> = (0..program.num_qubits()).map(QubitId::new).collect();
        let (hit_rate, fetches) = if lowered.is_empty() {
            (0.0, 0)
        } else {
            let sim = CacheSim::new(capacity);
            let cold = sim.run(&lowered, FetchPolicy::OptimizedLookahead, &inputs, 1);
            let warm = sim.run(&lowered, FetchPolicy::OptimizedLookahead, &inputs, 2);
            (warm.hit_rate(), warm.fetch_misses() - cold.fetch_misses())
        };

        let area = ctx.area_reduction(
            &tech,
            self.code,
            u64::from(program.num_qubits()),
            self.width,
        );

        let counts = program.counts();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Compile: {} program, {} qubits, {} gates ({} toffoli)",
            self.source,
            program.num_qubits(),
            program.len(),
            counts.toffoli
        );
        let _ = writeln!(
            out,
            "  lowered           {} gates after Toffoli decomposition",
            lowered.len()
        );
        let _ = writeln!(
            out,
            "  schedule          {} blocks: makespan {} steps (critical path {}, ideal {})",
            self.width,
            costs.makespan,
            costs.critical_path,
            costs.ideal_makespan(self.width)
        );
        let _ = writeln!(
            out,
            "  parallelism       peak {} / depth {}, utilization {:.0}%",
            costs.peak_parallelism,
            costs.depth,
            costs.utilization * 100.0
        );
        let _ = writeln!(out, "  latency (L2)      {latency_l2}");
        let _ = writeln!(
            out,
            "  latency (mixed)   {} ({:.0}% of steps at L1)",
            latency_mixed,
            share * 100.0
        );
        let _ = writeln!(
            out,
            "  cache             {} qubits: hit rate {:.0}%, {} fetches/run warm",
            capacity,
            hit_rate * 100.0,
            fetches
        );
        let _ = write!(out, "  area reduction    {area:.2}x vs QLA");

        let data = Json::obj([
            (
                "program",
                Json::obj([
                    ("source", Json::from(self.source.slug())),
                    ("qubits", Json::from(i64::from(program.num_qubits()))),
                    ("gates", Json::from(program.len() as i64)),
                    ("toffoli", Json::from(counts.toffoli as i64)),
                ]),
            ),
            (
                "schedule",
                Json::obj([
                    ("width", Json::from(i64::from(self.width))),
                    ("lowered_gates", Json::from(lowered.len() as i64)),
                    ("makespan", Json::from(costs.makespan as i64)),
                    ("critical_path", Json::from(costs.critical_path as i64)),
                    ("total_work", Json::from(costs.total_work as i64)),
                    ("depth", Json::from(costs.depth as i64)),
                    (
                        "peak_parallelism",
                        Json::from(costs.peak_parallelism as i64),
                    ),
                    ("utilization", Json::from(costs.utilization)),
                ]),
            ),
            (
                "latency",
                Json::obj([
                    ("l2_seconds", Json::from(latency_l2.as_secs())),
                    ("mixed_seconds", Json::from(latency_mixed.as_secs())),
                    ("level1_share", Json::from(share)),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("capacity", Json::from(capacity as i64)),
                    ("hit_rate", Json::from(hit_rate)),
                    ("fetches_per_run", Json::from(fetches as i64)),
                ]),
            ),
            ("area_reduction", Json::from(area)),
        ]);
        ExperimentOutput::new(out, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_compile_the_generated_workload() {
        let out = Compile::default().run();
        assert!(out.passed);
        assert!(out.text.contains("random program, 16 qubits, 256 gates"));
        assert!(out.text.contains("area reduction"));
        assert!(out.data.get("schedule").is_some());
        assert!(out.data.get("latency").is_some());
        assert!(out.data.get("cache").is_some());
    }

    #[test]
    fn runs_are_deterministic() {
        let a = Compile::default().run();
        let b = Compile::default().run();
        assert_eq!(a, b);
    }

    #[test]
    fn parameters_apply_and_validate() {
        let mut c = Compile::default();
        c.set("tech", "current").unwrap();
        c.set("code", "bacon-shor").unwrap();
        c.set("width", "4").unwrap();
        c.set("cache", "1.5").unwrap();
        c.set("seed", "7").unwrap();
        c.set("qubits", "8").unwrap();
        c.set("gates", "32").unwrap();
        c.set("source", "inline-asm").unwrap();
        assert_eq!(
            (c.tech, c.code, c.width, c.seed, c.qubits, c.gates, c.source),
            (
                TechPoint::Current,
                Code::BaconShor913,
                4,
                7,
                8,
                32,
                CompileSource::InlineAsm
            )
        );
        assert!(c.set("source", "telepathy").is_err());
        assert!(c.set("width", "0").is_err());
        assert!(c.set("nope", "1").is_err());
    }

    #[test]
    fn inline_asm_defaults_to_the_sample_program() {
        let mut c = Compile::default();
        c.set("source", "inline-asm").unwrap();
        let out = c.run();
        assert!(out.passed);
        assert!(out.text.contains("inline-asm program, 4 qubits, 6 gates"));
    }

    #[test]
    fn explicit_program_overrides_the_sample() {
        let mut c = Compile::default();
        c.set("source", "inline-asm").unwrap();
        c.set("program", "cnot q0, q1\ncnot q1, q2\n").unwrap();
        let out = c.run();
        assert!(out.passed);
        assert!(out.text.contains("3 qubits, 2 gates"));
    }

    #[test]
    fn bad_program_fails_without_panicking() {
        let mut c = Compile::default();
        c.set("source", "inline-asm").unwrap();
        c.set("program", "frobnicate q0\n").unwrap();
        let out = c.run();
        assert!(!out.passed);
        assert!(out.text.contains("frobnicate"));
        assert!(out.data.get("error").is_some());
    }

    #[test]
    fn seed_changes_the_artifact() {
        let mut a = Compile::default();
        a.set("seed", "1").unwrap();
        let mut b = Compile::default();
        b.set("seed", "2").unwrap();
        assert_ne!(a.run().data, b.run().data);
    }

    #[test]
    fn shared_context_reuses_the_schedule_across_techs() {
        let ctx = EvalCtx::new();
        let mut a = Compile::default();
        a.set("tech", "current").unwrap();
        let mut b = Compile::default();
        b.set("tech", "projected").unwrap();
        let _ = a.run_ctx(&ctx);
        let before = ctx.counters();
        let _ = b.run_ctx(&ctx);
        let after = ctx.counters();
        assert!(after.0 > before.0, "second tech point must hit the memo");
    }

    #[test]
    fn run_ctx_is_byte_identical_to_run() {
        let c = Compile::default();
        assert_eq!(c.run(), c.run_ctx(&EvalCtx::new()));
    }
}
