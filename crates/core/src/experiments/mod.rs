//! The paper's artifact catalog: one [`Experiment`] per table and figure
//! of the evaluation, plus the `verify` self-checks and the `machine`
//! configuration pricer.
//!
//! Every experiment is a typed parameter struct with paper defaults
//! (`Table4 { tech }`, `Fig2 { bits, cap }`, …) whose [`Experiment::run`]
//! produces both the text rendering the paper prints and the structured
//! JSON value. The [`registry`] enumerates all of them; the `cqla` CLI,
//! the benchmark harness (`crates/bench`), the end-to-end tests and the
//! examples all iterate it instead of naming generators one by one. The
//! per-cell functions ([`table4_row`], [`fig7_cell`], …) remain exported
//! so the parallel experiment engine (`cqla-sweep`) can fan one job out
//! per grid point and still match the registry output bitwise.
//!
//! Parameters are *typed*: every experiment declares [`ParamSpec`]s
//! ([`Domain`] + paper default), and the [`grid`] module parses
//! `key=value-set` expressions (`bits=32..=128:*2`, `base.tech=current`)
//! against that declared surface — value sets are first-class on every
//! registry entry, from every front end.

mod api;
mod apps;
mod compile;
mod figures;
pub mod grid;
mod machine;
mod tables;
mod verify;

pub use api::{
    find, ids, listing_json, params_usage, parse_code, parse_positive, parse_ratio, parse_source,
    parse_tech, registry, suggest, unknown_key, Domain, Experiment, ExperimentOutput, Param,
    ParamError, ParamSpec, CODE_ACCEPTS, INT_ACCEPTS, RATIO_ACCEPTS, SOURCE_ACCEPTS, TECH_ACCEPTS,
};
pub use apps::{fig8a_row, fig8b_row, AppTimeRow, Fig8a, Fig8b, FIG8A_SIZES, FIG8B_SIZES};
pub use compile::{Compile, CompileSource};
pub use cqla_iontrap::TechPoint;
pub use figures::{
    fig6a_cell, fig6a_cell_ctx, fig6b_series, fig7_cell, fig7_cell_ctx, Fig2, Fig2Data, Fig6a,
    Fig6aRow, Fig6b, Fig6bData, Fig7, Fig7Row, FIG6A_BLOCKS, FIG6A_SIZES, FIG6B_BLOCKS,
    FIG7_FACTORS, FIG7_SIZES,
};
pub use grid::{is_set_clause, Grid};
pub use machine::Machine;
pub use tables::{
    primary_blocks, table4_row, table4_row_ctx, table5_row, table5_row_ctx, Table1, Table2, Table3,
    Table3Data, Table4, Table4Row, Table5, Table5Row, TABLE5_PAR_XFER, TABLE5_SIZES,
};
pub use verify::Verify;
