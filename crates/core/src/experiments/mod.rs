//! One generator per table and figure of the paper's evaluation.
//!
//! Every generator returns typed rows *and* renders the same table/series
//! the paper prints, so the benchmark harness (`crates/bench`) can both
//! time the computation and emit the reproduction artifact. The index
//! lives in DESIGN.md §3; paper-vs-measured deltas in EXPERIMENTS.md.

mod apps;
mod figures;
mod tables;

pub use apps::{fig8a, fig8a_row, fig8b, fig8b_row, AppTimeRow, FIG8A_SIZES, FIG8B_SIZES};
pub use figures::{
    fig2, fig6a, fig6a_cell, fig6b, fig6b_series, fig7, fig7_cell, Fig2Data, Fig6aRow, Fig6bData,
    Fig7Row, FIG6A_BLOCKS, FIG6A_SIZES, FIG6B_BLOCKS, FIG7_FACTORS, FIG7_SIZES,
};
pub use tables::{
    primary_blocks, table2, table3, table4, table4_row, table5, table5_row, Table3Data, Table4Row,
    Table5Row, TABLE5_PAR_XFER, TABLE5_SIZES,
};
