//! One generator per table and figure of the paper's evaluation.
//!
//! Every generator returns typed rows *and* renders the same table/series
//! the paper prints, so the benchmark harness (`crates/bench`) can both
//! time the computation and emit the reproduction artifact. The index
//! lives in DESIGN.md §3; paper-vs-measured deltas in EXPERIMENTS.md.

mod apps;
mod figures;
mod tables;

pub use apps::{fig8a, fig8b, AppTimeRow};
pub use figures::{fig2, fig6a, fig6b, fig7, Fig2Data, Fig6aRow, Fig6bData, Fig7Row};
pub use tables::{table2, table3, table4, table5, Table3Data, Table4Row, Table5Row};
