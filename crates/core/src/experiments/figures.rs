//! The paper's Figures 2, 6a, 6b and 7 as [`Experiment`]s.

use cqla_circuit::QubitId;
use cqla_circuit::{DependencyDag, ListScheduler, Width};
use cqla_ecc::Code;
use cqla_iontrap::{TechPoint, TechnologyParams};
use cqla_network::{BandwidthSample, SuperblockBandwidth};
use cqla_workloads::DraperAdder;

use crate::cache::{CacheSim, FetchPolicy};
use crate::eval::EvalCtx;
use crate::json::ToJson;
use crate::report::{fmt3, TextTable};

use super::api::{
    parse_positive, parse_tech, unknown_key, Domain, Experiment, ExperimentOutput, Param,
};
use super::tables::primary_blocks;

/// Figure 2: parallelism over time for the 64-qubit adder, with unlimited
/// resources and with 15 compute blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig2Data {
    /// Gates in flight per unit-gate time step, unlimited resources.
    pub unlimited_profile: Vec<usize>,
    /// Gates in flight per time step, capped at 15 blocks.
    pub capped_profile: Vec<usize>,
    /// Makespan (unit-gate steps) with unlimited resources.
    pub unlimited_makespan: u64,
    /// Makespan with 15 blocks.
    pub capped_makespan: u64,
}

impl Fig2Data {
    /// The paper's observation: capping at 15 blocks leaves the runtime
    /// (essentially) unchanged. Returns the relative stretch.
    #[must_use]
    pub fn relative_stretch(&self) -> f64 {
        self.capped_makespan as f64 / self.unlimited_makespan as f64
    }
}

/// Figure 2 as an experiment (adder width and cap are parameters; the
/// paper uses 64 and 15).
///
/// Gates carry their fault-tolerant durations (Toffoli = 15 gate+EC
/// steps); this is what makes the paper's observation true — a Toffoli
/// occupies its block long enough that 15 blocks keep up with unlimited
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig2 {
    /// Adder width in bits.
    pub bits: u32,
    /// Compute-block cap for the constrained schedule.
    pub cap: u32,
}

impl Default for Fig2 {
    fn default() -> Self {
        Self { bits: 64, cap: 15 }
    }
}

impl Fig2 {
    /// Schedules both profiles.
    #[must_use]
    pub fn data(&self) -> Fig2Data {
        use cqla_circuit::Gate;
        let adder = DraperAdder::new(self.bits);
        let dag = DependencyDag::new(adder.circuit_ref());
        let weight = Gate::two_qubit_gate_equivalents;
        let unlimited = ListScheduler::new(&dag).schedule(Width::Unlimited, weight);
        let capped = ListScheduler::new(&dag).schedule(Width::Blocks(self.cap as usize), weight);
        Fig2Data {
            unlimited_profile: unlimited.occupancy().to_vec(),
            capped_profile: capped.occupancy().to_vec(),
            unlimited_makespan: unlimited.makespan(),
            capped_makespan: capped.makespan(),
        }
    }

    /// Renders the profile table plus the makespan summary line.
    #[must_use]
    pub fn render(&self, data: &Fig2Data) -> String {
        // Sample the profiles at Toffoli granularity for display.
        let stride = 15;
        let mut t = TextTable::new(["time", "unlimited", &format!("{} blocks", self.cap)]);
        let len = data.unlimited_profile.len().max(data.capped_profile.len());
        let mut i = 0;
        while i < len {
            t.push_row([
                (i / stride).to_string(),
                data.unlimited_profile
                    .get(i)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                data.capped_profile.get(i).copied().unwrap_or(0).to_string(),
            ]);
            i += stride;
        }
        format!(
            "{}\nmakespans: unlimited {}, capped {} ({:.2}x)",
            t,
            data.unlimited_makespan,
            data.capped_makespan,
            data.relative_stretch()
        )
    }
}

impl Experiment for Fig2 {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "Figure 2: adder parallelism profile"
    }

    fn params(&self) -> Vec<Param> {
        vec![
            Param::new("bits", self.bits, Domain::PosInt),
            Param::new("cap", self.cap, Domain::PosInt),
        ]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "bits" => self.bits = parse_positive("bits", value)?,
            "cap" => self.cap = parse_positive("cap", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        let data = self.data();
        ExperimentOutput::new(self.render(&data), data.to_json())
    }
}

/// One Figure 6a sample: utilization of `blocks` compute blocks on one
/// adder size.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig6aRow {
    /// Adder width in bits.
    pub adder_bits: u32,
    /// Compute blocks.
    pub blocks: u32,
    /// Mean block utilization in `[0, 1]`.
    pub utilization: f64,
}

/// The adder sizes Figure 6a sweeps.
pub const FIG6A_SIZES: [u32; 6] = [32, 64, 128, 256, 512, 1024];

/// The block counts Figure 6a sweeps.
pub const FIG6A_BLOCKS: [u32; 7] = [4, 16, 36, 64, 100, 144, 196];

/// Computes one Figure 6a cell: utilization of `blocks` compute blocks
/// on the `adder_bits`-bit adder. Per-cell twin of [`Fig6a`], for the
/// parallel experiment engine.
#[must_use]
pub fn fig6a_cell(tech: &TechnologyParams, adder_bits: u32, blocks: u32) -> Fig6aRow {
    fig6a_cell_ctx(tech, adder_bits, blocks, &EvalCtx::new())
}

/// [`fig6a_cell`] reusing sub-results memoized in `ctx`: the utilization
/// is schedule-derived and technology independent, so cells shared with
/// Table 4 (or other grid points) come for free.
#[must_use]
pub fn fig6a_cell_ctx(
    tech: &TechnologyParams,
    adder_bits: u32,
    blocks: u32,
    ctx: &EvalCtx,
) -> Fig6aRow {
    let _ = tech; // kept for signature parity with the other per-cell fns
    Fig6aRow {
        adder_bits,
        blocks,
        utilization: ctx.adder_costs(adder_bits, blocks).utilization,
    }
}

/// Figure 6a as an experiment: utilization vs block count for each adder
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig6a {
    /// Technology operating point.
    pub tech: TechPoint,
}

impl Default for Fig6a {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
        }
    }
}

impl Fig6a {
    /// The full size×blocks grid, sizes outer.
    #[must_use]
    pub fn rows(&self) -> Vec<Fig6aRow> {
        self.rows_ctx(&EvalCtx::new())
    }

    /// [`Fig6a::rows`] reusing sub-results memoized in `ctx`.
    #[must_use]
    pub fn rows_ctx(&self, ctx: &EvalCtx) -> Vec<Fig6aRow> {
        let tech = self.tech.params();
        let mut rows = Vec::new();
        for &bits in &FIG6A_SIZES {
            for &b in &FIG6A_BLOCKS {
                rows.push(fig6a_cell_ctx(&tech, bits, b, ctx));
            }
        }
        rows
    }

    /// Renders the paper-style matrix for `rows`.
    #[must_use]
    pub fn render(rows: &[Fig6aRow]) -> String {
        let mut t = TextTable::new(["blocks", "32", "64", "128", "256", "512", "1024"]);
        for &b in &FIG6A_BLOCKS {
            let mut cells = vec![b.to_string()];
            for &bits in &FIG6A_SIZES {
                let u = rows
                    .iter()
                    .find(|r| r.adder_bits == bits && r.blocks == b)
                    .map_or(0.0, |r| r.utilization);
                cells.push(fmt3(u));
            }
            t.push_row(cells);
        }
        t.to_string()
    }
}

impl Experiment for Fig6a {
    fn id(&self) -> &'static str {
        "fig6a"
    }

    fn title(&self) -> &'static str {
        "Figure 6a: block utilization"
    }

    fn params(&self) -> Vec<Param> {
        vec![Param::new("tech", self.tech, Domain::Tech)]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        self.run_ctx(&EvalCtx::new())
    }

    fn run_ctx(&self, ctx: &EvalCtx) -> ExperimentOutput {
        let rows = self.rows_ctx(ctx);
        ExperimentOutput::new(Self::render(&rows), rows.to_json())
    }
}

/// Figure 6b: required vs available perimeter bandwidth and the superblock
/// crossover, per code.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6bData {
    /// Samples per code over the block sweep.
    pub samples: Vec<(Code, Vec<BandwidthSample>)>,
    /// Crossover block count per code.
    pub crossovers: Vec<(Code, u32)>,
}

/// The superblock sizes (in blocks) Figure 6b sweeps.
pub const FIG6B_BLOCKS: [u32; 9] = [9, 18, 27, 36, 45, 54, 63, 72, 81];

/// Computes one code's Figure 6b series: the bandwidth samples over the
/// block sweep plus the crossover point. Per-code twin of [`Fig6b`], for
/// the parallel experiment engine.
#[must_use]
pub fn fig6b_series(tech: &TechnologyParams, code: Code) -> (Vec<BandwidthSample>, u32) {
    let model = SuperblockBandwidth::new(code, tech);
    (
        FIG6B_BLOCKS.iter().map(|&b| model.sample(b)).collect(),
        model.crossover_blocks(),
    )
}

/// Figure 6b as an experiment (blocks swept 4…81 as in the paper's
/// x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig6b {
    /// Technology operating point.
    pub tech: TechPoint,
}

impl Default for Fig6b {
    fn default() -> Self {
        Self {
            tech: TechPoint::Projected,
        }
    }
}

impl Fig6b {
    /// Both codes' bandwidth series and crossovers.
    #[must_use]
    pub fn data(&self) -> Fig6bData {
        let tech = self.tech.params();
        let mut samples: Vec<(Code, Vec<BandwidthSample>)> = Vec::new();
        let mut crossovers = Vec::new();
        for code in Code::ALL {
            let (series, crossover) = fig6b_series(&tech, code);
            samples.push((code, series));
            crossovers.push((code, crossover));
        }
        Fig6bData {
            samples,
            crossovers,
        }
    }

    /// Renders the bandwidth table plus the crossover lines.
    #[must_use]
    pub fn render(data: &Fig6bData) -> String {
        let mut t = TextTable::new([
            "blocks",
            "req draper(St)",
            "avail(St)",
            "req draper(BSr)",
            "avail(BSr)",
            "worst case",
        ]);
        for (i, &b) in FIG6B_BLOCKS.iter().enumerate() {
            let st = data.samples[0].1[i];
            let bs = data.samples[1].1[i];
            t.push_row([
                b.to_string(),
                fmt3(st.required_draper),
                fmt3(st.available),
                fmt3(bs.required_draper),
                fmt3(bs.available),
                fmt3(st.required_worst),
            ]);
        }
        let mut text = t.to_string();
        for (code, b) in &data.crossovers {
            text.push_str(&format!(
                "crossover {}: {} blocks/superblock\n",
                code.label(),
                b
            ));
        }
        text
    }
}

impl Experiment for Fig6b {
    fn id(&self) -> &'static str {
        "fig6b"
    }

    fn title(&self) -> &'static str {
        "Figure 6b: superblock bandwidth"
    }

    fn params(&self) -> Vec<Param> {
        vec![Param::new("tech", self.tech, Domain::Tech)]
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), super::ParamError> {
        match key {
            "tech" => self.tech = parse_tech("tech", value)?,
            _ => return Err(unknown_key(key, &self.params())),
        }
        Ok(())
    }

    fn run(&self) -> ExperimentOutput {
        let data = self.data();
        ExperimentOutput::new(Self::render(&data), data.to_json())
    }
}

/// One Figure 7 sample: hit rate of one (adder, cache size, policy) cell.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig7Row {
    /// Adder width in bits.
    pub adder_bits: u32,
    /// Cache capacity as a multiple of the compute-region qubits.
    pub cache_factor: f64,
    /// Fetch policy.
    pub policy: FetchPolicy,
    /// Measured hit rate in `[0, 1]`.
    pub hit_rate: f64,
}

/// The adder sizes Figure 7 sweeps.
pub const FIG7_SIZES: [u32; 5] = [64, 128, 256, 512, 1024];

/// The cache-capacity factors Figure 7 sweeps.
pub const FIG7_FACTORS: [f64; 3] = [1.0, 1.5, 2.0];

/// Computes one Figure 7 cell: the hit rate of one
/// `(adder, cache size, policy)` simulation. Per-cell twin of [`Fig7`],
/// for the parallel experiment engine.
#[must_use]
pub fn fig7_cell(adder_bits: u32, cache_factor: f64, policy: FetchPolicy) -> Fig7Row {
    fig7_cell_ctx(adder_bits, cache_factor, policy, &EvalCtx::new())
}

/// [`fig7_cell`] reusing sub-results memoized in `ctx`. Only the
/// optimized-lookahead cells go through the context (that is the policy
/// the hierarchy study simulates, so those steady states are shared);
/// in-order cells always simulate directly.
#[must_use]
pub fn fig7_cell_ctx(
    adder_bits: u32,
    cache_factor: f64,
    policy: FetchPolicy,
    ctx: &EvalCtx,
) -> Fig7Row {
    let pe = 9 * primary_blocks(adder_bits) as usize;
    let capacity = (((pe as f64) * cache_factor).round() as usize).max(1);
    let hit_rate = if policy == FetchPolicy::OptimizedLookahead {
        ctx.cache_behavior(adder_bits, capacity).hit_rate
    } else {
        let adder = DraperAdder::new(adder_bits);
        let circuit = adder.circuit();
        let inputs: Vec<QubitId> = adder
            .a_register()
            .chain(adder.b_register())
            .map(QubitId::new)
            .collect();
        CacheSim::new(capacity)
            .run(&circuit, policy, &inputs, 2)
            .hit_rate()
    };
    Fig7Row {
        adder_bits,
        cache_factor,
        policy,
        hit_rate,
    }
}

/// Figure 7 as an experiment: cache hit rates for adders of 64…1024 bits,
/// cache sizes {1, 1.5, 2}×PE, both fetch policies.
///
/// PE (compute-region qubits) scales with the Table 4 block provisioning
/// for each adder size; the cache warms over two consecutive additions, as
/// in the repeated additions of a modular exponentiation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fig7;

impl Fig7 {
    /// The full size×factor×policy grid.
    #[must_use]
    pub fn rows(&self) -> Vec<Fig7Row> {
        self.rows_ctx(&EvalCtx::new())
    }

    /// [`Fig7::rows`] reusing sub-results memoized in `ctx`.
    #[must_use]
    pub fn rows_ctx(&self, ctx: &EvalCtx) -> Vec<Fig7Row> {
        let mut rows = Vec::new();
        for &bits in &FIG7_SIZES {
            for &factor in &FIG7_FACTORS {
                for policy in [FetchPolicy::InOrder, FetchPolicy::OptimizedLookahead] {
                    rows.push(fig7_cell_ctx(bits, factor, policy, ctx));
                }
            }
        }
        rows
    }

    /// Renders the paper-style hit-rate table for `rows`.
    #[must_use]
    pub fn render(rows: &[Fig7Row]) -> String {
        let mut t = TextTable::new([
            "adder",
            "cache=PE",
            "opt PE",
            "cache=1.5PE",
            "opt 1.5PE",
            "cache=2PE",
            "opt 2PE",
        ]);
        for &bits in &FIG7_SIZES {
            let get = |factor: f64, policy: FetchPolicy| {
                rows.iter()
                    .find(|r| {
                        r.adder_bits == bits
                            && (r.cache_factor - factor).abs() < 1e-9
                            && r.policy == policy
                    })
                    .map_or(0.0, |r| r.hit_rate * 100.0)
            };
            t.push_row([
                format!("{bits}-bit"),
                format!("{:.0}%", get(1.0, FetchPolicy::InOrder)),
                format!("{:.0}%", get(1.0, FetchPolicy::OptimizedLookahead)),
                format!("{:.0}%", get(1.5, FetchPolicy::InOrder)),
                format!("{:.0}%", get(1.5, FetchPolicy::OptimizedLookahead)),
                format!("{:.0}%", get(2.0, FetchPolicy::InOrder)),
                format!("{:.0}%", get(2.0, FetchPolicy::OptimizedLookahead)),
            ]);
        }
        t.to_string()
    }
}

impl Experiment for Fig7 {
    fn id(&self) -> &'static str {
        "fig7"
    }

    fn title(&self) -> &'static str {
        "Figure 7: cache hit rates"
    }

    fn run(&self) -> ExperimentOutput {
        self.run_ctx(&EvalCtx::new())
    }

    fn run_ctx(&self, ctx: &EvalCtx) -> ExperimentOutput {
        let rows = self.rows_ctx(ctx);
        ExperimentOutput::new(Self::render(&rows), rows.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_few_blocks_capture_available_parallelism() {
        // Paper Fig 2: ~15 blocks match unlimited hardware for the
        // 64-qubit adder. Our Brent-Kung construction exposes a little
        // more parallelism (work/critical-path ≈ 22), so 15 blocks stretch
        // the adder mildly and ~22 capture everything.
        let fig = Fig2::default();
        let at_paper_cap = fig.data();
        assert!(
            at_paper_cap.relative_stretch() < 1.8,
            "stretch {}",
            at_paper_cap.relative_stretch()
        );
        let saturated = Fig2 { bits: 64, cap: 32 }.data();
        assert!(
            saturated.relative_stretch() < 1.15,
            "stretch {}",
            saturated.relative_stretch()
        );
        // The unlimited profile opens near n gates wide.
        assert!(*at_paper_cap.unlimited_profile.iter().max().unwrap() >= 55);
        // The capped profile never exceeds the cap.
        assert!(at_paper_cap.capped_profile.iter().all(|&g| g <= 15));
        assert!(fig.render(&at_paper_cap).contains("unlimited"));
    }

    #[test]
    fn fig2_profile_area_is_conserved() {
        // Gate-seconds are conserved between the two schedules.
        let data = Fig2::default().data();
        let a: usize = data.unlimited_profile.iter().sum();
        let b: usize = data.capped_profile.iter().sum();
        assert_eq!(a, b, "both schedules run every gate-step");
    }

    #[test]
    fn fig6a_utilization_monotone_in_blocks() {
        let rows = Fig6a::default().rows();
        for bits in [32u32, 1024] {
            let series: Vec<f64> = rows
                .iter()
                .filter(|r| r.adder_bits == bits)
                .map(|r| r.utilization)
                .collect();
            for pair in series.windows(2) {
                assert!(pair[1] <= pair[0] + 1e-9, "bits {bits}: {series:?}");
            }
        }
        assert!(Fig6a::render(&rows).contains("blocks"));
    }

    #[test]
    fn fig6b_has_crossovers_in_band() {
        let data = Fig6b::default().data();
        for (code, b) in &data.crossovers {
            assert!((10..=80).contains(b), "{code}: {b}");
        }
        assert!(Fig6b::render(&data).contains("crossover"));
    }

    #[test]
    fn fig7_optimized_dominates_and_is_size_stable() {
        let rows = Fig7.rows();
        // Optimized fetch beats in-order in every cell.
        for bits in [64u32, 256, 1024] {
            for factor in [1.0, 1.5, 2.0] {
                let find = |p: FetchPolicy| {
                    rows.iter()
                        .find(|r| {
                            r.adder_bits == bits
                                && (r.cache_factor - factor).abs() < 1e-9
                                && r.policy == p
                        })
                        .unwrap()
                        .hit_rate
                };
                assert!(
                    find(FetchPolicy::OptimizedLookahead) > find(FetchPolicy::InOrder),
                    "bits {bits}, factor {factor}"
                );
            }
        }
        assert!(Fig7::render(&rows).contains("64-bit"));
    }
}
