//! Diagnostic: print every registry artifact (run with --nocapture).
use cqla_core::experiments::registry;

#[test]
#[ignore]
fn print_all() {
    for exp in registry() {
        let out = exp.run();
        println!("================ {} ================", exp.title());
        println!("{}\n", out.text);
    }
}
