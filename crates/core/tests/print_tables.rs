//! Diagnostic: print the reproduced tables (run with --nocapture).
use cqla_iontrap::TechnologyParams;

#[test]
#[ignore]
fn print_all() {
    let tech = TechnologyParams::projected();
    let (_, t4) = cqla_core::experiments::table4(&tech);
    println!("TABLE 4:\n{t4}");
    let (_, t5) = cqla_core::experiments::table5(&tech);
    println!("TABLE 5:\n{t5}");
}
