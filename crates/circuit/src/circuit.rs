//! Circuit container and builder.

use std::collections::BTreeMap;

use crate::gate::{Gate, QubitId};

/// A logical quantum circuit: an ordered gate list over a fixed register.
///
/// # Examples
///
/// Build a half adder on 3 qubits:
///
/// ```
/// use cqla_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.toffoli(0, 1, 2); // carry = a AND b
/// c.cnot(0, 1); // sum = a XOR b
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.counts().toffoli, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Circuit {
    num_qubits: u32,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    #[must_use]
    pub fn new(num_qubits: u32) -> Self {
        assert!(num_qubits > 0, "a circuit needs at least one qubit");
        Self {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    #[must_use]
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of gates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` if the circuit has no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate after validating its operands.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range or operands repeat.
    pub fn push(&mut self, gate: Gate) {
        let qs = gate.qubits();
        for q in &qs {
            assert!(
                q.index() < self.num_qubits,
                "gate {gate} references {q} outside register of {}",
                self.num_qubits
            );
        }
        for (i, a) in qs.iter().enumerate() {
            for b in &qs[i + 1..] {
                assert_ne!(a, b, "gate {gate} repeats operand {a}");
            }
        }
        self.gates.push(gate);
    }

    /// Appends all gates of `other` (registers must match).
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn append(&mut self, other: &Circuit) {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "cannot append circuits over different registers"
        );
        self.gates.extend_from_slice(&other.gates);
    }

    /// Appends all gates of `other` with its qubits mapped to
    /// `offset..offset + other.num_qubits()` of this register.
    ///
    /// # Panics
    ///
    /// Panics if the embedded circuit does not fit.
    pub fn append_embedded(&mut self, other: &Circuit, offset: u32) {
        assert!(
            offset + other.num_qubits() <= self.num_qubits,
            "embedded circuit exceeds register ({} + {} > {})",
            offset,
            other.num_qubits(),
            self.num_qubits
        );
        for g in &other.gates {
            self.gates.push(g.shifted(offset));
        }
    }

    /// Appends `X` on `q`.
    pub fn x(&mut self, q: u32) {
        self.push(Gate::X(QubitId::new(q)));
    }

    /// Appends `Y` on `q`.
    pub fn y(&mut self, q: u32) {
        self.push(Gate::Y(QubitId::new(q)));
    }

    /// Appends `Z` on `q`.
    pub fn z(&mut self, q: u32) {
        self.push(Gate::Z(QubitId::new(q)));
    }

    /// Appends `S` on `q`.
    pub fn s(&mut self, q: u32) {
        self.push(Gate::S(QubitId::new(q)));
    }

    /// Appends `T` on `q`.
    pub fn t(&mut self, q: u32) {
        self.push(Gate::T(QubitId::new(q)));
    }

    /// Appends `H` on `q`.
    pub fn h(&mut self, q: u32) {
        self.push(Gate::H(QubitId::new(q)));
    }

    /// Appends a CNOT.
    pub fn cnot(&mut self, control: u32, target: u32) {
        self.push(Gate::cnot(control, target));
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: u32, b: u32) {
        self.push(Gate::Cz {
            a: QubitId::new(a),
            b: QubitId::new(b),
        });
    }

    /// Appends a Toffoli.
    pub fn toffoli(&mut self, c1: u32, c2: u32, target: u32) {
        self.push(Gate::toffoli(c1, c2, target));
    }

    /// Appends a controlled phase rotation of order `k`.
    pub fn controlled_phase(&mut self, control: u32, target: u32, order: u8) {
        self.push(Gate::ControlledPhase {
            control: QubitId::new(control),
            target: QubitId::new(target),
            order,
        });
    }

    /// Appends a measurement.
    pub fn measure(&mut self, q: u32) {
        self.push(Gate::Measure(QubitId::new(q)));
    }

    /// Per-kind gate census.
    #[must_use]
    pub fn counts(&self) -> GateCounts {
        let mut counts = GateCounts::default();
        for g in &self.gates {
            match g {
                Gate::Toffoli { .. } => counts.toffoli += 1,
                Gate::Cnot { .. } => counts.cnot += 1,
                Gate::Cz { .. } | Gate::ControlledPhase { .. } => counts.two_qubit_other += 1,
                Gate::Measure(_) => counts.measure += 1,
                _ => counts.single_qubit += 1,
            }
        }
        counts
    }

    /// Total cost in two-qubit-gate equivalents (Toffoli = 15, paper §5.1).
    #[must_use]
    pub fn total_gate_equivalents(&self) -> u64 {
        self.gates
            .iter()
            .map(Gate::two_qubit_gate_equivalents)
            .sum()
    }

    /// Number of distinct qubits actually touched by gates.
    #[must_use]
    pub fn active_qubits(&self) -> usize {
        let mut seen = BTreeMap::new();
        for g in &self.gates {
            for q in g.qubits() {
                *seen.entry(q).or_insert(0u32) += 1;
            }
        }
        seen.len()
    }
}

impl core::fmt::Display for Circuit {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "# circuit: {} qubits, {} gates",
            self.num_qubits,
            self.len()
        )?;
        for g in &self.gates {
            writeln!(f, "{g}")?;
        }
        Ok(())
    }
}

/// Gate census of a circuit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GateCounts {
    /// Single-qubit unitaries.
    pub single_qubit: u64,
    /// CNOT gates.
    pub cnot: u64,
    /// Other two-qubit gates (CZ, controlled-phase).
    pub two_qubit_other: u64,
    /// Toffoli gates.
    pub toffoli: u64,
    /// Measurements.
    pub measure: u64,
}

impl GateCounts {
    /// Total gate count.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.single_qubit + self.cnot + self.two_qubit_other + self.toffoli + self.measure
    }
}

impl core::fmt::Display for GateCounts {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} gates ({} 1q, {} cnot, {} other 2q, {} toffoli, {} measure)",
            self.total(),
            self.single_qubit,
            self.cnot,
            self.two_qubit_other,
            self.toffoli,
            self.measure
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cnot(0, 1);
        c.toffoli(0, 1, 2);
        c.controlled_phase(2, 3, 2);
        c.measure(3);
        let counts = c.counts();
        assert_eq!(counts.single_qubit, 1);
        assert_eq!(counts.cnot, 1);
        assert_eq!(counts.toffoli, 1);
        assert_eq!(counts.two_qubit_other, 1);
        assert_eq!(counts.measure, 1);
        assert_eq!(counts.total(), 5);
        assert_eq!(c.total_gate_equivalents(), 1 + 1 + 15 + 1 + 1);
        assert_eq!(c.active_qubits(), 4);
    }

    #[test]
    fn every_gate_kind_has_a_builder() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.y(0);
        c.z(0);
        c.s(0);
        c.t(0);
        c.h(0);
        c.cnot(0, 1);
        c.cz(0, 1);
        let counts = c.counts();
        assert_eq!(counts.single_qubit, 6);
        assert_eq!(counts.cnot, 1);
        assert_eq!(counts.two_qubit_other, 1);
        assert_eq!(c.gates()[1], Gate::Y(QubitId::new(0)));
        assert_eq!(
            c.gates()[7],
            Gate::Cz {
                a: QubitId::new(0),
                b: QubitId::new(1)
            }
        );
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(2);
        a.cnot(0, 1);
        let mut b = Circuit::new(2);
        b.x(0);
        a.append(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside register")]
    fn rejects_out_of_range_operand() {
        let mut c = Circuit::new(2);
        c.cnot(0, 2);
    }

    #[test]
    #[should_panic(expected = "repeats operand")]
    fn rejects_duplicate_operand() {
        let mut c = Circuit::new(3);
        c.toffoli(1, 1, 2);
    }

    #[test]
    #[should_panic(expected = "different registers")]
    fn append_rejects_mismatched_registers() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.append(&b);
    }

    #[test]
    fn append_embedded_shifts_operands() {
        let mut inner = Circuit::new(2);
        inner.cnot(0, 1);
        let mut outer = Circuit::new(5);
        outer.append_embedded(&inner, 3);
        assert_eq!(outer.gates()[0], Gate::cnot(3, 4));
        // Offset zero embeds verbatim.
        outer.append_embedded(&inner, 0);
        assert_eq!(outer.gates()[1], Gate::cnot(0, 1));
    }

    #[test]
    #[should_panic(expected = "exceeds register")]
    fn append_embedded_rejects_overflow() {
        let mut inner = Circuit::new(3);
        inner.x(2);
        let mut outer = Circuit::new(4);
        outer.append_embedded(&inner, 2);
    }

    #[test]
    fn display_contains_header_and_gates() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let text = c.to_string();
        assert!(text.contains("# circuit: 2 qubits, 1 gates"));
        assert!(text.contains("cnot q0, q1"));
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(1);
        assert!(c.is_empty());
        assert_eq!(c.counts().total(), 0);
        assert_eq!(c.active_qubits(), 0);
    }
}
