//! Logical gates and qubit identifiers.

/// Identifier of a logical qubit within a circuit.
///
/// # Examples
///
/// ```
/// use cqla_circuit::QubitId;
///
/// let q = QubitId::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(q.to_string(), "q3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct QubitId(u32);

impl QubitId {
    /// Creates a qubit id.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The raw index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl From<u32> for QubitId {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

impl core::fmt::Display for QubitId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A logical gate instruction.
///
/// The set matches what the paper's workloads need: Clifford gates, the `T`
/// gate (for universality), the Toffoli (the workhorse of the Draper
/// adder), controlled-phase rotations (for the QFT), and measurement.
///
/// # Examples
///
/// ```
/// use cqla_circuit::{Gate, QubitId};
///
/// let g = Gate::toffoli(0, 1, 2);
/// assert_eq!(g.qubits().len(), 3);
/// assert!(g.is_classical());
/// assert_eq!(g.two_qubit_gate_equivalents(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Gate {
    /// Pauli X.
    X(QubitId),
    /// Pauli Y.
    Y(QubitId),
    /// Pauli Z.
    Z(QubitId),
    /// Hadamard.
    H(QubitId),
    /// Phase gate.
    S(QubitId),
    /// The non-Clifford T gate.
    T(QubitId),
    /// Controlled-NOT.
    Cnot {
        /// Control qubit.
        control: QubitId,
        /// Target qubit.
        target: QubitId,
    },
    /// Controlled-Z.
    Cz {
        /// First qubit (CZ is symmetric).
        a: QubitId,
        /// Second qubit.
        b: QubitId,
    },
    /// Controlled phase rotation by `2π / 2^k` (the QFT's building block).
    ControlledPhase {
        /// Control qubit.
        control: QubitId,
        /// Target qubit.
        target: QubitId,
        /// Rotation order `k` (angle `2π / 2^k`).
        order: u8,
    },
    /// Toffoli (controlled-controlled-NOT).
    Toffoli {
        /// First control.
        c1: QubitId,
        /// Second control.
        c2: QubitId,
        /// Target qubit.
        target: QubitId,
    },
    /// Computational-basis measurement.
    Measure(QubitId),
}

impl Gate {
    /// Convenience constructor for a CNOT from raw indices.
    #[must_use]
    pub fn cnot(control: u32, target: u32) -> Self {
        Self::Cnot {
            control: QubitId::new(control),
            target: QubitId::new(target),
        }
    }

    /// Convenience constructor for a Toffoli from raw indices.
    #[must_use]
    pub fn toffoli(c1: u32, c2: u32, target: u32) -> Self {
        Self::Toffoli {
            c1: QubitId::new(c1),
            c2: QubitId::new(c2),
            target: QubitId::new(target),
        }
    }

    /// The qubits this gate touches, in operand order.
    #[must_use]
    pub fn qubits(&self) -> Vec<QubitId> {
        match *self {
            Self::X(q)
            | Self::Y(q)
            | Self::Z(q)
            | Self::H(q)
            | Self::S(q)
            | Self::T(q)
            | Self::Measure(q) => vec![q],
            Self::Cnot { control, target } => vec![control, target],
            Self::Cz { a, b } => vec![a, b],
            Self::ControlledPhase {
                control, target, ..
            } => vec![control, target],
            Self::Toffoli { c1, c2, target } => vec![c1, c2, target],
        }
    }

    /// Number of operands.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// `true` if the gate permutes computational basis states (X, CNOT,
    /// Toffoli) — such circuits can be verified with the classical
    /// reversible simulator.
    #[must_use]
    pub fn is_classical(&self) -> bool {
        matches!(self, Self::X(_) | Self::Cnot { .. } | Self::Toffoli { .. })
    }

    /// Fault-tolerant execution cost in two-qubit-gate equivalents.
    ///
    /// The paper's rule (§5.1): a fault-tolerant Toffoli costs fifteen
    /// two-qubit gates, each followed by error correction. Everything else
    /// is one logical gate step.
    #[must_use]
    pub fn two_qubit_gate_equivalents(&self) -> u64 {
        match self {
            Self::Toffoli { .. } => 15,
            _ => 1,
        }
    }

    /// The same gate with every operand index shifted up by `offset` —
    /// used to embed a circuit into a larger register.
    #[must_use]
    pub fn shifted(&self, offset: u32) -> Self {
        let s = |q: QubitId| QubitId::new(q.index() + offset);
        match *self {
            Self::X(q) => Self::X(s(q)),
            Self::Y(q) => Self::Y(s(q)),
            Self::Z(q) => Self::Z(s(q)),
            Self::H(q) => Self::H(s(q)),
            Self::S(q) => Self::S(s(q)),
            Self::T(q) => Self::T(s(q)),
            Self::Measure(q) => Self::Measure(s(q)),
            Self::Cnot { control, target } => Self::Cnot {
                control: s(control),
                target: s(target),
            },
            Self::Cz { a, b } => Self::Cz { a: s(a), b: s(b) },
            Self::ControlledPhase {
                control,
                target,
                order,
            } => Self::ControlledPhase {
                control: s(control),
                target: s(target),
                order,
            },
            Self::Toffoli { c1, c2, target } => Self::Toffoli {
                c1: s(c1),
                c2: s(c2),
                target: s(target),
            },
        }
    }

    /// Lowercase mnemonic used by the assembly format.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Self::X(_) => "x",
            Self::Y(_) => "y",
            Self::Z(_) => "z",
            Self::H(_) => "h",
            Self::S(_) => "s",
            Self::T(_) => "t",
            Self::Cnot { .. } => "cnot",
            Self::Cz { .. } => "cz",
            Self::ControlledPhase { .. } => "cphase",
            Self::Toffoli { .. } => "toffoli",
            Self::Measure(_) => "measure",
        }
    }
}

impl core::fmt::Display for Gate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.mnemonic())?;
        if let Self::ControlledPhase { order, .. } = self {
            write!(f, "[{order}]")?;
        }
        let mut first = true;
        for q in self.qubits() {
            if first {
                write!(f, " {q}")?;
                first = false;
            } else {
                write!(f, ", {q}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_id_round_trip() {
        let q = QubitId::from(7u32);
        assert_eq!(q.index(), 7);
        assert_eq!(q, QubitId::new(7));
    }

    #[test]
    fn operand_lists() {
        assert_eq!(Gate::X(QubitId::new(0)).arity(), 1);
        assert_eq!(
            Gate::cnot(1, 2).qubits(),
            vec![QubitId::new(1), QubitId::new(2)]
        );
        assert_eq!(Gate::toffoli(0, 1, 2).arity(), 3);
    }

    #[test]
    fn classicality() {
        assert!(Gate::X(QubitId::new(0)).is_classical());
        assert!(Gate::cnot(0, 1).is_classical());
        assert!(Gate::toffoli(0, 1, 2).is_classical());
        assert!(!Gate::H(QubitId::new(0)).is_classical());
        assert!(!Gate::Measure(QubitId::new(0)).is_classical());
    }

    #[test]
    fn toffoli_cost_is_fifteen() {
        assert_eq!(Gate::toffoli(0, 1, 2).two_qubit_gate_equivalents(), 15);
        assert_eq!(Gate::cnot(0, 1).two_qubit_gate_equivalents(), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(Gate::cnot(3, 4).to_string(), "cnot q3, q4");
        assert_eq!(Gate::toffoli(0, 1, 2).to_string(), "toffoli q0, q1, q2");
        let cp = Gate::ControlledPhase {
            control: QubitId::new(0),
            target: QubitId::new(1),
            order: 3,
        };
        assert_eq!(cp.to_string(), "cphase[3] q0, q1");
    }
}
