//! Logical quantum circuit IR, dependency analysis, scheduling, and
//! classical reversible verification.
//!
//! The CQLA study asks one recurring question of its workloads: *how much
//! parallelism is there, and what happens when hardware caps it?* (paper
//! §3.1, Fig 2, Fig 6a). This crate provides the machinery:
//!
//! * [`Circuit`] / [`Gate`] — the logical-gate IR the workload generators
//!   emit,
//! * [`DependencyDag`] — data-dependency analysis, critical paths and the
//!   unlimited-resources parallelism profile,
//! * [`ListScheduler`] — resource-constrained list scheduling onto `B`
//!   compute blocks, with occupancy and utilization reporting,
//! * [`ClassicalState`] — exact verification of reversible (X/CNOT/Toffoli)
//!   circuits such as adders,
//! * [`asm`] — the assembly-style text format consumed by the cache
//!   simulator.
//!
//! # Examples
//!
//! ```
//! use cqla_circuit::{Circuit, DependencyDag, ListScheduler, Width};
//!
//! let mut c = Circuit::new(6);
//! c.toffoli(0, 1, 2);
//! c.toffoli(3, 4, 5); // independent of the first
//! c.cnot(2, 5); // joins both
//! let dag = DependencyDag::new(&c);
//! assert_eq!(dag.parallelism_profile(), vec![2, 1]);
//!
//! let schedule = ListScheduler::new(&dag).schedule(Width::Blocks(1), |_| 1);
//! assert_eq!(schedule.makespan(), 3); // serialized
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod circuit;
mod classical;
mod dag;
mod decompose;
mod gate;
mod schedule;

pub use circuit::{Circuit, GateCounts};
pub use classical::{ClassicalState, NonClassicalGate};
pub use dag::DependencyDag;
pub use decompose::{decompose_toffolis, TOFFOLI_DECOMPOSITION_GATES};
pub use gate::{Gate, QubitId};
pub use schedule::{ListScheduler, Schedule, Width};
