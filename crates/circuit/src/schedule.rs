//! Resource-constrained list scheduling (paper §5.1, Fig 2, Fig 6a).
//!
//! The CQLA restricts computation to `B` compute blocks; whether that hurts
//! depends on how much parallelism the workload's dependency structure
//! exposes. This module schedules a [`DependencyDag`] onto a bounded number
//! of gate slots using classic list scheduling with downstream-critical-path
//! priority, producing the makespans, utilizations and occupancy profiles
//! behind the paper's specialization results.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dag::DependencyDag;
use crate::gate::Gate;

/// Width of a schedule: how many logical gates may execute simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Width {
    /// No resource limit (the QLA's maximal-parallelism assumption).
    Unlimited,
    /// At most this many concurrent gates (the CQLA's compute blocks).
    Blocks(usize),
}

impl Width {
    fn cap(self) -> usize {
        match self {
            Self::Unlimited => usize::MAX,
            Self::Blocks(b) => {
                assert!(b > 0, "schedule width must be positive");
                b
            }
        }
    }
}

impl core::fmt::Display for Width {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Unlimited => write!(f, "unlimited"),
            Self::Blocks(b) => write!(f, "{b} blocks"),
        }
    }
}

/// The result of scheduling a circuit onto bounded gate slots.
///
/// Times are in abstract units of the weight function handed to
/// [`ListScheduler::schedule`]; multiply by the logical gate duration from
/// [`EccMetrics`](../../cqla_ecc/struct.EccMetrics.html) to get wall-clock
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    width: Width,
    makespan: u64,
    total_work: u64,
    start_times: Vec<u64>,
    occupancy: Vec<usize>,
}

impl Schedule {
    /// The width the schedule was built for.
    #[must_use]
    pub fn width(&self) -> Width {
        self.width
    }

    /// Completion time of the last gate.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Sum of all gate durations.
    #[must_use]
    pub fn total_work(&self) -> u64 {
        self.total_work
    }

    /// Start time of each gate (program order indices).
    #[must_use]
    pub fn start_times(&self) -> &[u64] {
        &self.start_times
    }

    /// Number of gates executing during each time unit — the paper's
    /// "gates in parallel" series (Fig 2).
    #[must_use]
    pub fn occupancy(&self) -> &[usize] {
        &self.occupancy
    }

    /// Peak concurrent gates.
    ///
    /// An empty schedule has no occupied time units and peaks at `0`.
    #[must_use]
    pub fn peak_parallelism(&self) -> usize {
        self.occupancy.iter().copied().max().unwrap_or(0)
    }

    /// Mean compute-block utilization: work / (blocks × makespan).
    ///
    /// For [`Width::Unlimited`] the denominator uses the peak parallelism
    /// (the hardware a sea-of-qubits machine would have had to provision).
    ///
    /// Empty schedules report `0.0` rather than the `0/0` the formula
    /// would produce, and a single-gate schedule under
    /// [`Width::Unlimited`] reports exactly `1.0` (one slot, fully busy)
    /// — neither edge divides by zero.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.total_work == 0 {
            return 0.0;
        }
        let slots = match self.width {
            Width::Blocks(b) => b.max(1),
            Width::Unlimited => self.peak_parallelism().max(1),
        };
        self.total_work as f64 / (slots as f64 * self.makespan as f64)
    }
}

/// List scheduler over a dependency DAG.
///
/// Ready gates are prioritized by remaining downstream critical path
/// (longest first), breaking ties by program order, which keeps schedules
/// deterministic.
///
/// # Examples
///
/// ```
/// use cqla_circuit::{Circuit, DependencyDag, Gate, ListScheduler, Width};
///
/// let mut c = Circuit::new(8);
/// for i in 0..4 {
///     c.cnot(2 * i, 2 * i + 1);
/// }
/// let dag = DependencyDag::new(&c);
/// let unlimited = ListScheduler::new(&dag).schedule(Width::Unlimited, |_| 1);
/// let two = ListScheduler::new(&dag).schedule(Width::Blocks(2), |_| 1);
/// assert_eq!(unlimited.makespan(), 1);
/// assert_eq!(two.makespan(), 2);
/// assert!(two.utilization() > unlimited.utilization() - 1e-12);
/// ```
#[derive(Debug)]
pub struct ListScheduler<'a> {
    dag: &'a DependencyDag,
}

impl<'a> ListScheduler<'a> {
    /// Creates a scheduler over `dag`.
    #[must_use]
    pub fn new(dag: &'a DependencyDag) -> Self {
        Self { dag }
    }

    /// Schedules every gate onto at most `width` slots, with per-gate
    /// durations from `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is `Blocks(0)` or any weight is zero.
    #[must_use]
    pub fn schedule<W: Fn(&Gate) -> u64>(&self, width: Width, weight: W) -> Schedule {
        let n = self.dag.num_gates();
        let cap = width.cap();
        let weights: Vec<u64> = (0..n).map(|i| weight(&self.dag.gate(i))).collect();
        assert!(
            weights.iter().all(|&w| w > 0),
            "gate weights must be positive"
        );
        let priority = self.dag.downstream_priority(|g| weight(g));

        let mut indegree: Vec<usize> = (0..n).map(|i| self.dag.predecessors(i).len()).collect();
        // Ready heap: max by (priority, Reverse(index)).
        let mut ready: BinaryHeap<(u64, Reverse<usize>)> = BinaryHeap::new();
        for i in 0..n {
            if indegree[i] == 0 {
                ready.push((priority[i], Reverse(i)));
            }
        }
        // Completion events: min-heap of (finish_time, gate).
        let mut running: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut start_times = vec![0u64; n];
        let mut busy = 0usize;
        let mut now = 0u64;
        let mut makespan = 0u64;
        let mut intervals: Vec<(u64, u64)> = Vec::with_capacity(n);
        let mut scheduled = 0usize;

        while scheduled < n || !running.is_empty() {
            // Launch as many ready gates as slots allow.
            while busy < cap {
                let Some((_, Reverse(i))) = ready.pop() else {
                    break;
                };
                start_times[i] = now;
                let finish = now + weights[i];
                intervals.push((now, finish));
                running.push(Reverse((finish, i)));
                busy += 1;
                scheduled += 1;
                makespan = makespan.max(finish);
            }
            // Advance to the next completion.
            let Some(Reverse((t, _))) = running.peek().copied() else {
                assert_eq!(scheduled, n, "deadlock: gates remain but none running");
                break;
            };
            now = t;
            while let Some(&Reverse((t2, i))) = running.peek() {
                if t2 != now {
                    break;
                }
                running.pop();
                busy -= 1;
                for &s in self.dag.successors(i) {
                    indegree[s] -= 1;
                    if indegree[s] == 0 {
                        ready.push((priority[s], Reverse(s)));
                    }
                }
            }
        }

        let occupancy = occupancy_from_intervals(&intervals, makespan);
        Schedule {
            width,
            makespan,
            total_work: weights.iter().sum(),
            start_times,
            occupancy,
        }
    }
}

fn occupancy_from_intervals(intervals: &[(u64, u64)], makespan: u64) -> Vec<usize> {
    // Sweep with +1/-1 deltas; makespans here are modest (≤ ~10⁵ units).
    let mut deltas = vec![0isize; makespan as usize + 1];
    for &(s, f) in intervals {
        deltas[s as usize] += 1;
        deltas[f as usize] -= 1;
    }
    let mut occupancy = Vec::with_capacity(makespan as usize);
    let mut current = 0isize;
    for d in deltas.iter().take(makespan as usize) {
        current += d;
        occupancy.push(current as usize);
    }
    occupancy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn unit(_: &Gate) -> u64 {
        1
    }

    fn diamond() -> Circuit {
        // g0 -> (g1, g2) -> g3 over 4 qubits.
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(0, 2);
        c.cnot(1, 3);
        c.cnot(2, 3);
        c
    }

    #[test]
    fn width_one_serializes() {
        let c = diamond();
        let dag = DependencyDag::new(&c);
        let s = ListScheduler::new(&dag).schedule(Width::Blocks(1), unit);
        assert_eq!(s.makespan(), 4);
        assert_eq!(s.peak_parallelism(), 1);
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unlimited_equals_critical_path() {
        let c = diamond();
        let dag = DependencyDag::new(&c);
        let s = ListScheduler::new(&dag).schedule(Width::Unlimited, unit);
        assert_eq!(s.makespan(), dag.critical_path(unit));
    }

    #[test]
    fn makespan_bounds_hold() {
        let c = diamond();
        let dag = DependencyDag::new(&c);
        for b in 1..=4 {
            let s = ListScheduler::new(&dag).schedule(Width::Blocks(b), unit);
            let cp = dag.critical_path(unit);
            let work = dag.total_work(unit);
            assert!(s.makespan() >= cp);
            assert!(s.makespan() >= work.div_ceil(b as u64));
            assert!(s.makespan() <= work);
        }
    }

    #[test]
    fn makespan_is_monotone_in_width() {
        let mut c = Circuit::new(16);
        // Two dependent layers of 8 independent CNOTs.
        for i in 0..8u32 {
            c.cnot(2 * i, 2 * i + 1);
        }
        for i in 0..8u32 {
            c.cnot((2 * i + 1) % 16, (2 * i + 2) % 16);
        }
        let dag = DependencyDag::new(&c);
        let mut last = u64::MAX;
        for b in 1..=16 {
            let s = ListScheduler::new(&dag).schedule(Width::Blocks(b), unit);
            assert!(s.makespan() <= last, "width {b} regressed");
            last = s.makespan();
        }
    }

    #[test]
    fn occupancy_never_exceeds_width_and_sums_to_work() {
        let c = diamond();
        let dag = DependencyDag::new(&c);
        let s = ListScheduler::new(&dag).schedule(Width::Blocks(2), unit);
        assert!(s.occupancy().iter().all(|&o| o <= 2));
        let area: usize = s.occupancy().iter().sum();
        assert_eq!(area as u64, s.total_work());
    }

    #[test]
    fn weighted_gates_occupy_slots_for_their_duration() {
        let mut c = Circuit::new(5);
        c.toffoli(0, 1, 2); // weight 15
        c.cnot(3, 4); // weight 1, independent
        let dag = DependencyDag::new(&c);
        let s =
            ListScheduler::new(&dag).schedule(Width::Blocks(2), Gate::two_qubit_gate_equivalents);
        assert_eq!(s.makespan(), 15);
        assert_eq!(s.occupancy()[0], 2);
        assert_eq!(s.occupancy()[14], 1);
    }

    #[test]
    fn start_times_respect_dependencies() {
        let c = diamond();
        let dag = DependencyDag::new(&c);
        for b in 1..=4 {
            let s = ListScheduler::new(&dag).schedule(Width::Blocks(b), unit);
            for i in 0..dag.num_gates() {
                for &p in dag.predecessors(i) {
                    assert!(
                        s.start_times()[i] > s.start_times()[p],
                        "width {b}: gate {i} starts before predecessor {p} finishes"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_circuit_schedules_trivially() {
        let c = Circuit::new(1);
        let dag = DependencyDag::new(&c);
        let s = ListScheduler::new(&dag).schedule(Width::Blocks(3), unit);
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.utilization(), 0.0);
        assert!(s.occupancy().is_empty());
    }

    #[test]
    fn empty_circuit_under_unlimited_width_has_finite_metrics() {
        let c = Circuit::new(1);
        let dag = DependencyDag::new(&c);
        let s = ListScheduler::new(&dag).schedule(Width::Unlimited, unit);
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.peak_parallelism(), 0);
        assert_eq!(s.total_work(), 0);
        // 0/0 must not leak out as NaN.
        assert_eq!(s.utilization(), 0.0);
        assert!(s.utilization().is_finite());
    }

    #[test]
    fn single_gate_circuit_is_fully_utilized() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let dag = DependencyDag::new(&c);
        for width in [Width::Unlimited, Width::Blocks(1)] {
            let s = ListScheduler::new(&dag).schedule(width, unit);
            assert_eq!(s.makespan(), 1);
            assert_eq!(s.peak_parallelism(), 1);
            assert!((s.utilization() - 1.0).abs() < 1e-12, "width {width}");
            assert!(s.utilization().is_finite());
        }
    }

    #[test]
    fn single_gate_on_wide_hardware_dilutes_utilization() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let dag = DependencyDag::new(&c);
        let s = ListScheduler::new(&dag).schedule(Width::Blocks(4), unit);
        assert!((s.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "schedule width must be positive")]
    fn zero_width_is_rejected() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let dag = DependencyDag::new(&c);
        let _ = ListScheduler::new(&dag).schedule(Width::Blocks(0), unit);
    }

    #[test]
    fn display_width() {
        assert_eq!(Width::Unlimited.to_string(), "unlimited");
        assert_eq!(Width::Blocks(15).to_string(), "15 blocks");
    }
}
