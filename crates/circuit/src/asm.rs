//! Assembly-style text format for instruction streams.
//!
//! The paper's cache simulator consumes "a sequence of instructions; each
//! instruction is similar to assembly language and describes a logical gate
//! between qubits" (§5.2). This module round-trips circuits through that
//! format:
//!
//! ```text
//! # circuit: 4 qubits, 2 gates
//! toffoli q0, q1, q2
//! cphase[3] q2, q3
//! ```
//!
//! Parse failures carry the offending line, a byte span within it, and an
//! optional did-you-mean hint, rendered in the same caret style as the
//! sweep-spec grammar's `SpecError`:
//!
//! ```text
//! parse error at line 2, columns 0..10: unknown mnemonic "frobnicate"
//!   frobnicate q1
//!   ^^^^^^^^^^
//!   hint: did you mean `toffoli`?
//! ```

use crate::circuit::Circuit;
use crate::gate::{Gate, QubitId};

/// Every mnemonic the grammar accepts, for did-you-mean suggestions.
const MNEMONICS: [&str; 11] = [
    "x", "y", "z", "s", "t", "h", "cnot", "cz", "cphase", "toffoli", "measure",
];

/// Error produced while parsing circuit assembly.
///
/// Carries the 1-based line number, the byte span of the offending token
/// within that line, the line's text, and an optional hint. `Display`
/// renders a spanned caret diagnostic; front ends surface it verbatim
/// (exit 2 on the CLI, `{error, hint}` JSON over HTTP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    line: usize,
    span: (usize, usize),
    source: String,
    message: String,
    hint: Option<String>,
}

impl ParseAsmError {
    fn new(line: usize, source: &str, token: &str, message: impl Into<String>) -> Self {
        Self {
            line,
            span: byte_span(source, token),
            source: source.to_string(),
            message: message.into(),
            hint: None,
        }
    }

    fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// 1-based line number of the offending line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// Byte span `(start, end)` of the offending token within
    /// [`ParseAsmError::source_line`].
    #[must_use]
    pub fn span(&self) -> (usize, usize) {
        self.span
    }

    /// Text of the offending line.
    #[must_use]
    pub fn source_line(&self) -> &str {
        &self.source
    }

    /// The bare diagnostic message, without the caret rendering.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// A did-you-mean or usage hint, when one applies.
    #[must_use]
    pub fn hint(&self) -> Option<&str> {
        self.hint.as_deref()
    }
}

/// Byte span of `token` within `line` (the token must be a subslice);
/// falls back to the whole line.
fn byte_span(line: &str, token: &str) -> (usize, usize) {
    let line_ptr = line.as_ptr() as usize;
    let tok_ptr = token.as_ptr() as usize;
    if tok_ptr >= line_ptr && tok_ptr + token.len() <= line_ptr + line.len() {
        let start = tok_ptr - line_ptr;
        (start, start + token.len())
    } else {
        (0, line.len())
    }
}

impl core::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (start, end) = self.span;
        writeln!(
            f,
            "parse error at line {}, columns {start}..{end}: {}",
            self.line, self.message
        )?;
        writeln!(f, "  {}", self.source)?;
        let pad = self.source[..start.min(self.source.len())].chars().count();
        let width = self.source[start.min(self.source.len())..end.min(self.source.len())]
            .chars()
            .count()
            .max(1);
        write!(f, "  {}{}", " ".repeat(pad), "^".repeat(width))?;
        if let Some(hint) = &self.hint {
            write!(f, "\n  hint: {hint}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseAsmError {}

/// Serializes a circuit to assembly text (the same format [`Circuit`]'s
/// `Display` produces).
#[must_use]
pub fn emit(circuit: &Circuit) -> String {
    circuit.to_string()
}

/// Parses assembly text into a circuit.
///
/// The register size is the maximum qubit index seen plus one, unless a
/// header comment `# circuit: N qubits, ...` declares a larger one.
///
/// # Errors
///
/// Returns [`ParseAsmError`] — with line number, span, and caret
/// rendering — on unknown mnemonics, malformed operands, arity
/// mismatches, or repeated operands.
///
/// # Examples
///
/// ```
/// use cqla_circuit::asm;
///
/// let c = asm::parse("cnot q0, q1\ntoffoli q0, q1, q2\n")?;
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.len(), 2);
/// # Ok::<(), cqla_circuit::asm::ParseAsmError>(())
/// ```
pub fn parse(text: &str) -> Result<Circuit, ParseAsmError> {
    let mut declared_qubits: Option<u32> = None;
    let mut gates: Vec<Gate> = Vec::new();
    let mut max_qubit: u32 = 0;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(rest) = comment.trim().strip_prefix("circuit:") {
                if let Some(n) = rest.split_whitespace().next() {
                    if let Ok(n) = n.parse::<u32>() {
                        declared_qubits = Some(n);
                    }
                }
            }
            continue;
        }
        let gate = parse_line(raw, line, lineno)?;
        for q in gate.qubits() {
            max_qubit = max_qubit.max(q.index());
        }
        gates.push(gate);
    }

    let num_qubits = declared_qubits
        .unwrap_or(max_qubit + 1)
        .max(max_qubit + 1)
        .max(1);
    let mut circuit = Circuit::new(num_qubits);
    for g in gates {
        circuit.push(g);
    }
    Ok(circuit)
}

/// Parses one non-blank, non-comment line. `raw` is the full source line
/// (for spans), `line` its trimmed subslice.
fn parse_line(raw: &str, line: &str, lineno: usize) -> Result<Gate, ParseAsmError> {
    let (head, rest) = match line.split_once(' ') {
        Some((h, r)) => (h.trim(), r.trim()),
        None => (line, ""),
    };
    let (mnemonic, order) = match head.split_once('[') {
        Some((m, bracket)) => {
            let inner = bracket.strip_suffix(']').ok_or_else(|| {
                ParseAsmError::new(lineno, raw, head, format!("unterminated '[' in {head:?}"))
                    .with_hint("phase orders close with `]`, e.g. cphase[3]")
            })?;
            let k: u8 = inner.parse().map_err(|_| {
                ParseAsmError::new(lineno, raw, inner, format!("invalid phase order {inner:?}"))
                    .with_hint("the order is a small integer, e.g. cphase[3]")
            })?;
            (m, Some(k))
        }
        None => (head, None),
    };

    if !MNEMONICS.contains(&mnemonic) {
        let mut err =
            ParseAsmError::new(lineno, raw, head, format!("unknown mnemonic {mnemonic:?}"));
        if let Some(candidate) = suggest(mnemonic, &MNEMONICS) {
            err = err.with_hint(format!("did you mean `{candidate}`?"));
        } else {
            err = err.with_hint(format!("known mnemonics: {}", MNEMONICS.join(", ")));
        }
        return Err(err);
    }
    if order.is_some() && mnemonic != "cphase" {
        return Err(ParseAsmError::new(
            lineno,
            raw,
            head,
            format!("{mnemonic} does not take an order parameter"),
        )
        .with_hint("only cphase takes an order, e.g. cphase[3] q0, q1"));
    }

    let mut operands: Vec<QubitId> = Vec::new();
    if !rest.is_empty() {
        for tok in rest.split(',') {
            operands.push(parse_qubit(raw, tok.trim(), lineno)?);
        }
    }

    let expect = |n: usize| -> Result<(), ParseAsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            let span_tok = if rest.is_empty() { head } else { rest };
            Err(ParseAsmError::new(
                lineno,
                raw,
                span_tok,
                format!("{mnemonic} expects {n} operands, got {}", operands.len()),
            )
            .with_hint(format!(
                "operands are comma-separated qubits, e.g. {mnemonic}{} {}",
                if mnemonic == "cphase" { "[3]" } else { "" },
                (0..n)
                    .map(|i| format!("q{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
        }
    };

    for (i, a) in operands.iter().enumerate() {
        if operands[i + 1..].contains(a) {
            return Err(ParseAsmError::new(
                lineno,
                raw,
                rest,
                format!("{mnemonic} repeats operand {a}"),
            )
            .with_hint("each operand must name a distinct qubit"));
        }
    }

    let gate = match mnemonic {
        "x" => {
            expect(1)?;
            Gate::X(operands[0])
        }
        "y" => {
            expect(1)?;
            Gate::Y(operands[0])
        }
        "z" => {
            expect(1)?;
            Gate::Z(operands[0])
        }
        "h" => {
            expect(1)?;
            Gate::H(operands[0])
        }
        "s" => {
            expect(1)?;
            Gate::S(operands[0])
        }
        "t" => {
            expect(1)?;
            Gate::T(operands[0])
        }
        "measure" => {
            expect(1)?;
            Gate::Measure(operands[0])
        }
        "cnot" => {
            expect(2)?;
            Gate::Cnot {
                control: operands[0],
                target: operands[1],
            }
        }
        "cz" => {
            expect(2)?;
            Gate::Cz {
                a: operands[0],
                b: operands[1],
            }
        }
        "cphase" => {
            expect(2)?;
            let order = order.ok_or_else(|| {
                ParseAsmError::new(lineno, raw, head, "cphase requires an order")
                    .with_hint("write the order in brackets, e.g. cphase[3] q0, q1")
            })?;
            Gate::ControlledPhase {
                control: operands[0],
                target: operands[1],
                order,
            }
        }
        "toffoli" => {
            expect(3)?;
            Gate::Toffoli {
                c1: operands[0],
                c2: operands[1],
                target: operands[2],
            }
        }
        _ => unreachable!("mnemonic membership checked above"),
    };
    Ok(gate)
}

fn parse_qubit(raw: &str, token: &str, lineno: usize) -> Result<QubitId, ParseAsmError> {
    let digits = token.strip_prefix('q').ok_or_else(|| {
        ParseAsmError::new(
            lineno,
            raw,
            token,
            format!("operand {token:?} must look like q7"),
        )
        .with_hint("qubit operands are `q` followed by an index")
    })?;
    let index: u32 = digits.parse().map_err(|_| {
        ParseAsmError::new(
            lineno,
            raw,
            token,
            format!("invalid qubit index in {token:?}"),
        )
        .with_hint("the index is a decimal integer, e.g. q7")
    })?;
    Ok(QubitId::new(index))
}

/// Returns the closest candidate within an edit-distance budget of
/// `2.max(len/3)` — the did-you-mean heuristic the sweep-spec grammar
/// uses.
fn suggest(input: &str, candidates: &[&'static str]) -> Option<&'static str> {
    let budget = 2.max(input.chars().count().div_ceil(3));
    candidates
        .iter()
        .map(|c| (edit_distance(input, c), *c))
        .filter(|&(d, _)| d <= budget)
        .min()
        .map(|(_, c)| c)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_circuit() {
        let mut c = Circuit::new(5);
        c.h(0);
        c.cnot(0, 1);
        c.toffoli(1, 2, 3);
        c.controlled_phase(3, 4, 5);
        c.measure(4);
        let text = emit(&c);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn header_declares_register_size() {
        let c = parse("# circuit: 10 qubits, 1 gates\nx q0\n").unwrap();
        assert_eq!(c.num_qubits(), 10);
    }

    #[test]
    fn register_inferred_from_operands() {
        let c = parse("cnot q2, q7\n").unwrap();
        assert_eq!(c.num_qubits(), 8);
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let c = parse("\n# hello\n\nx q0\n# bye\n").unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("x q0\nfrobnicate q1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn unknown_mnemonic_renders_span_and_suggestion() {
        let err = parse("x q0\ntofolli q0, q1, q2\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.span(), (0, 7));
        assert_eq!(err.source_line(), "tofolli q0, q1, q2");
        assert_eq!(err.hint(), Some("did you mean `toffoli`?"));
        let rendered = err.to_string();
        assert!(rendered.contains("parse error at line 2, columns 0..7"));
        assert!(rendered.contains("\n  tofolli q0, q1, q2\n  ^^^^^^^"));
        assert!(rendered.contains("hint: did you mean `toffoli`?"));
    }

    #[test]
    fn spans_respect_leading_whitespace() {
        let err = parse("   x banana\n").unwrap_err();
        assert_eq!(err.span(), (5, 11));
        assert!(err.to_string().contains("\n     x banana\n       ^^^^^^"));
    }

    #[test]
    fn arity_errors() {
        assert!(parse("cnot q0\n").is_err());
        assert!(parse("toffoli q0, q1\n").is_err());
        assert!(parse("x q0, q1\n").is_err());
        let err = parse("cnot q0\n").unwrap_err();
        assert!(err.to_string().contains("cnot expects 2 operands, got 1"));
        assert_eq!(
            err.hint(),
            Some("operands are comma-separated qubits, e.g. cnot q0, q1")
        );
    }

    #[test]
    fn repeated_operands_error_instead_of_panicking() {
        let err = parse("cnot q3, q3\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("repeats operand q3"));
    }

    #[test]
    fn malformed_operands() {
        assert!(parse("x 0\n").is_err());
        assert!(parse("x qx\n").is_err());
        assert!(parse("cphase q0, q1\n").is_err()); // missing order
        assert!(parse("cphase[z] q0, q1\n").is_err());
        assert!(parse("cnot[2] q0, q1\n").is_err()); // stray order
        let err = parse("x 0\n").unwrap_err();
        assert_eq!(err.span(), (2, 3));
    }

    #[test]
    fn unknown_mnemonic_without_close_match_lists_the_grammar() {
        let err = parse("quux q0\n").unwrap_err();
        assert!(err.hint().unwrap().starts_with("known mnemonics:"));
    }

    #[test]
    fn suggest_respects_budget() {
        assert_eq!(suggest("tofoli", &MNEMONICS), Some("toffoli"));
        assert_eq!(suggest("measrue", &MNEMONICS), Some("measure"));
        assert_eq!(suggest("zzzzzzzzzz", &MNEMONICS), None);
    }
}
