//! Assembly-style text format for instruction streams.
//!
//! The paper's cache simulator consumes "a sequence of instructions; each
//! instruction is similar to assembly language and describes a logical gate
//! between qubits" (§5.2). This module round-trips circuits through that
//! format:
//!
//! ```text
//! # circuit: 4 qubits, 2 gates
//! toffoli q0, q1, q2
//! cphase[3] q2, q3
//! ```

use crate::circuit::Circuit;
use crate::gate::{Gate, QubitId};

/// Error produced while parsing circuit assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    line: usize,
    message: String,
}

impl ParseAsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl core::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

/// Serializes a circuit to assembly text (the same format [`Circuit`]'s
/// `Display` produces).
#[must_use]
pub fn emit(circuit: &Circuit) -> String {
    circuit.to_string()
}

/// Parses assembly text into a circuit.
///
/// The register size is the maximum qubit index seen plus one, unless a
/// header comment `# circuit: N qubits, ...` declares it.
///
/// # Errors
///
/// Returns [`ParseAsmError`] on unknown mnemonics, malformed operands, or
/// arity mismatches.
///
/// # Examples
///
/// ```
/// use cqla_circuit::asm;
///
/// let c = asm::parse("cnot q0, q1\ntoffoli q0, q1, q2\n")?;
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.len(), 2);
/// # Ok::<(), cqla_circuit::asm::ParseAsmError>(())
/// ```
pub fn parse(text: &str) -> Result<Circuit, ParseAsmError> {
    let mut declared_qubits: Option<u32> = None;
    let mut gates: Vec<Gate> = Vec::new();
    let mut max_qubit: u32 = 0;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(rest) = comment.trim().strip_prefix("circuit:") {
                if let Some(n) = rest.split_whitespace().next() {
                    if let Ok(n) = n.parse::<u32>() {
                        declared_qubits = Some(n);
                    }
                }
            }
            continue;
        }
        let gate = parse_line(line, lineno)?;
        for q in gate.qubits() {
            max_qubit = max_qubit.max(q.index());
        }
        gates.push(gate);
    }

    let num_qubits = declared_qubits
        .unwrap_or(max_qubit + 1)
        .max(max_qubit + 1)
        .max(1);
    let mut circuit = Circuit::new(num_qubits);
    for g in gates {
        circuit.push(g);
    }
    Ok(circuit)
}

fn parse_line(line: &str, lineno: usize) -> Result<Gate, ParseAsmError> {
    let (head, rest) = match line.split_once(' ') {
        Some((h, r)) => (h.trim(), r.trim()),
        None => (line, ""),
    };
    let (mnemonic, order) = match head.split_once('[') {
        Some((m, bracket)) => {
            let inner = bracket.strip_suffix(']').ok_or_else(|| {
                ParseAsmError::new(lineno, format!("unterminated '[' in {head:?}"))
            })?;
            let k: u8 = inner.parse().map_err(|_| {
                ParseAsmError::new(lineno, format!("invalid phase order {inner:?}"))
            })?;
            (m, Some(k))
        }
        None => (head, None),
    };

    let operands: Vec<QubitId> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',')
            .map(|tok| parse_qubit(tok.trim(), lineno))
            .collect::<Result<_, _>>()?
    };

    let expect = |n: usize| -> Result<(), ParseAsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(ParseAsmError::new(
                lineno,
                format!("{mnemonic} expects {n} operands, got {}", operands.len()),
            ))
        }
    };

    let gate = match mnemonic {
        "x" => {
            expect(1)?;
            Gate::X(operands[0])
        }
        "y" => {
            expect(1)?;
            Gate::Y(operands[0])
        }
        "z" => {
            expect(1)?;
            Gate::Z(operands[0])
        }
        "h" => {
            expect(1)?;
            Gate::H(operands[0])
        }
        "s" => {
            expect(1)?;
            Gate::S(operands[0])
        }
        "t" => {
            expect(1)?;
            Gate::T(operands[0])
        }
        "measure" => {
            expect(1)?;
            Gate::Measure(operands[0])
        }
        "cnot" => {
            expect(2)?;
            Gate::Cnot {
                control: operands[0],
                target: operands[1],
            }
        }
        "cz" => {
            expect(2)?;
            Gate::Cz {
                a: operands[0],
                b: operands[1],
            }
        }
        "cphase" => {
            expect(2)?;
            let order = order.ok_or_else(|| {
                ParseAsmError::new(lineno, "cphase requires an order, e.g. cphase[3]")
            })?;
            Gate::ControlledPhase {
                control: operands[0],
                target: operands[1],
                order,
            }
        }
        "toffoli" => {
            expect(3)?;
            Gate::Toffoli {
                c1: operands[0],
                c2: operands[1],
                target: operands[2],
            }
        }
        other => {
            return Err(ParseAsmError::new(
                lineno,
                format!("unknown mnemonic {other:?}"),
            ))
        }
    };
    if order.is_some() && mnemonic != "cphase" {
        return Err(ParseAsmError::new(
            lineno,
            format!("{mnemonic} does not take an order parameter"),
        ));
    }
    Ok(gate)
}

fn parse_qubit(token: &str, lineno: usize) -> Result<QubitId, ParseAsmError> {
    let digits = token.strip_prefix('q').ok_or_else(|| {
        ParseAsmError::new(lineno, format!("operand {token:?} must look like q7"))
    })?;
    let index: u32 = digits
        .parse()
        .map_err(|_| ParseAsmError::new(lineno, format!("invalid qubit index in {token:?}")))?;
    Ok(QubitId::new(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_circuit() {
        let mut c = Circuit::new(5);
        c.h(0);
        c.cnot(0, 1);
        c.toffoli(1, 2, 3);
        c.controlled_phase(3, 4, 5);
        c.measure(4);
        let text = emit(&c);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn header_declares_register_size() {
        let c = parse("# circuit: 10 qubits, 1 gates\nx q0\n").unwrap();
        assert_eq!(c.num_qubits(), 10);
    }

    #[test]
    fn register_inferred_from_operands() {
        let c = parse("cnot q2, q7\n").unwrap();
        assert_eq!(c.num_qubits(), 8);
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let c = parse("\n# hello\n\nx q0\n# bye\n").unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("x q0\nfrobnicate q1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn arity_errors() {
        assert!(parse("cnot q0\n").is_err());
        assert!(parse("toffoli q0, q1\n").is_err());
        assert!(parse("x q0, q1\n").is_err());
    }

    #[test]
    fn malformed_operands() {
        assert!(parse("x 0\n").is_err());
        assert!(parse("x qx\n").is_err());
        assert!(parse("cphase q0, q1\n").is_err()); // missing order
        assert!(parse("cphase[z] q0, q1\n").is_err());
        assert!(parse("cnot[2] q0, q1\n").is_err()); // stray order
    }
}
