//! Dependency analysis: the gate DAG, critical paths, and parallelism
//! profiles (paper Fig 2).

use crate::circuit::Circuit;
use crate::gate::Gate;

/// The data-dependency DAG of a circuit: gate `j` depends on gate `i` when
/// they share an operand and `i` precedes `j` in program order (with only
/// the *latest* prior toucher of each operand kept, which is sufficient for
/// scheduling).
///
/// # Examples
///
/// ```
/// use cqla_circuit::{Circuit, DependencyDag};
///
/// let mut c = Circuit::new(4);
/// c.cnot(0, 1); // layer 0
/// c.cnot(2, 3); // layer 0 (independent)
/// c.cnot(1, 2); // layer 1 (depends on both)
/// let dag = DependencyDag::new(&c);
/// assert_eq!(dag.parallelism_profile(), vec![2, 1]);
/// assert_eq!(dag.depth(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DependencyDag {
    num_gates: usize,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    gates: Vec<Gate>,
}

impl DependencyDag {
    /// Builds the DAG of `circuit`.
    #[must_use]
    pub fn new(circuit: &Circuit) -> Self {
        let gates: Vec<Gate> = circuit.gates().to_vec();
        let n = gates.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_touch: Vec<Option<usize>> = vec![None; circuit.num_qubits() as usize];
        for (i, gate) in gates.iter().enumerate() {
            for q in gate.qubits() {
                if let Some(p) = last_touch[q.index() as usize] {
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_touch[q.index() as usize] = Some(i);
            }
        }
        Self {
            num_gates: n,
            preds,
            succs,
            gates,
        }
    }

    /// Number of gates (DAG nodes).
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// The gate at node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn gate(&self, i: usize) -> Gate {
        self.gates[i]
    }

    /// Direct dependencies of gate `i`.
    #[must_use]
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Gates directly depending on gate `i`.
    #[must_use]
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// ASAP level of every gate with unit gate durations (level 0 = no
    /// dependencies).
    #[must_use]
    pub fn asap_levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.num_gates];
        for i in 0..self.num_gates {
            // Program order is a topological order by construction.
            for &p in &self.preds[i] {
                level[i] = level[i].max(level[p] + 1);
            }
        }
        level
    }

    /// Circuit depth in unit-gate layers (0 for an empty circuit).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.asap_levels().iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// Number of gates eligible to run at each unit-time layer under
    /// unlimited resources — the paper's Fig 2 "unlimited" series.
    #[must_use]
    pub fn parallelism_profile(&self) -> Vec<usize> {
        let levels = self.asap_levels();
        let mut profile = vec![0usize; self.depth()];
        for &l in &levels {
            profile[l] += 1;
        }
        profile
    }

    /// Weighted critical-path length: the longest dependency chain where
    /// each gate contributes `weight(gate)` time units. This is the
    /// makespan lower bound no amount of parallel hardware can beat.
    #[must_use]
    pub fn critical_path<W: Fn(&Gate) -> u64>(&self, weight: W) -> u64 {
        let mut finish = vec![0u64; self.num_gates];
        let mut best = 0;
        for i in 0..self.num_gates {
            let start = self.preds[i].iter().map(|&p| finish[p]).max().unwrap_or(0);
            finish[i] = start + weight(&self.gates[i]);
            best = best.max(finish[i]);
        }
        best
    }

    /// Total work: the sum of gate weights.
    #[must_use]
    pub fn total_work<W: Fn(&Gate) -> u64>(&self, weight: W) -> u64 {
        self.gates.iter().map(weight).sum()
    }

    /// Average parallelism = total unit-gate count / depth.
    #[must_use]
    pub fn average_parallelism(&self) -> f64 {
        if self.num_gates == 0 {
            return 0.0;
        }
        self.num_gates as f64 / self.depth() as f64
    }

    /// Remaining critical path from each gate to the DAG's exit, under
    /// `weight` — the standard list-scheduling priority.
    #[must_use]
    pub fn downstream_priority<W: Fn(&Gate) -> u64>(&self, weight: W) -> Vec<u64> {
        let mut prio = vec![0u64; self.num_gates];
        for i in (0..self.num_gates).rev() {
            let tail = self.succs[i].iter().map(|&s| prio[s]).max().unwrap_or(0);
            prio[i] = tail + weight(&self.gates[i]);
        }
        prio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(_: &Gate) -> u64 {
        1
    }

    #[test]
    fn chain_is_serial() {
        let mut c = Circuit::new(2);
        for _ in 0..5 {
            c.cnot(0, 1);
        }
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.depth(), 5);
        assert_eq!(dag.parallelism_profile(), vec![1; 5]);
        assert_eq!(dag.critical_path(unit), 5);
        assert_eq!(dag.average_parallelism(), 1.0);
    }

    #[test]
    fn independent_gates_are_flat() {
        let mut c = Circuit::new(8);
        for i in 0..4 {
            c.cnot(2 * i, 2 * i + 1);
        }
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.depth(), 1);
        assert_eq!(dag.parallelism_profile(), vec![4]);
        assert_eq!(dag.average_parallelism(), 4.0);
    }

    #[test]
    fn profile_area_equals_gate_count() {
        let mut c = Circuit::new(6);
        c.toffoli(0, 1, 2);
        c.cnot(2, 3);
        c.cnot(4, 5);
        c.h(0);
        c.cnot(0, 4);
        let dag = DependencyDag::new(&c);
        let area: usize = dag.parallelism_profile().iter().sum();
        assert_eq!(area, c.len());
    }

    #[test]
    fn weighted_critical_path_counts_toffolis() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        c.cnot(0, 1);
        let dag = DependencyDag::new(&c);
        let w = Gate::two_qubit_gate_equivalents;
        // The cnot depends on the toffoli via q0/q1: 15 + 1.
        assert_eq!(dag.critical_path(w), 16);
        assert_eq!(dag.total_work(w), 16);
    }

    #[test]
    fn predecessors_are_deduplicated() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.cnot(0, 1); // shares both operands with gate 0
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn downstream_priority_decreases_along_chains() {
        let mut c = Circuit::new(2);
        for _ in 0..3 {
            c.cnot(0, 1);
        }
        let dag = DependencyDag::new(&c);
        let prio = dag.downstream_priority(unit);
        assert_eq!(prio, vec![3, 2, 1]);
    }

    #[test]
    fn empty_circuit_edge_cases() {
        let c = Circuit::new(1);
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.depth(), 0);
        assert!(dag.parallelism_profile().is_empty());
        assert_eq!(dag.critical_path(unit), 0);
        assert_eq!(dag.average_parallelism(), 0.0);
    }
}
