//! Classical reversible simulation.
//!
//! Adder circuits built from X / CNOT / Toffoli permute computational basis
//! states, so their arithmetic can be verified exactly by propagating a
//! classical bit vector. This is how the workload generators prove that the
//! Draper carry-lookahead adder actually adds.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Error returned when a circuit contains a gate that does not act as a
/// permutation of computational basis states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonClassicalGate {
    gate: Gate,
    position: usize,
}

impl NonClassicalGate {
    /// The offending gate.
    #[must_use]
    pub fn gate(&self) -> Gate {
        self.gate
    }

    /// Its index in the circuit.
    #[must_use]
    pub fn position(&self) -> usize {
        self.position
    }
}

impl core::fmt::Display for NonClassicalGate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "gate {} at position {} is not classical-reversible",
            self.gate, self.position
        )
    }
}

impl std::error::Error for NonClassicalGate {}

/// A classical bit-vector register evolving under reversible gates.
///
/// # Examples
///
/// ```
/// use cqla_circuit::{Circuit, ClassicalState};
///
/// let mut c = Circuit::new(3);
/// c.toffoli(0, 1, 2);
/// let mut state = ClassicalState::from_bits(&[true, true, false]);
/// state.run(&c)?;
/// assert!(state.bit(2)); // AND computed into q2
/// # Ok::<(), cqla_circuit::NonClassicalGate>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalState {
    bits: Vec<bool>,
}

impl ClassicalState {
    /// All-zero register of `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "register needs at least one bit");
        Self {
            bits: vec![false; n],
        }
    }

    /// Register initialized from explicit bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "register needs at least one bit");
        Self {
            bits: bits.to_vec(),
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the register is empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        self.bits[i] = value;
    }

    /// The raw bits.
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Loads an unsigned integer little-endian into bits
    /// `offset..offset + width`.
    ///
    /// # Panics
    ///
    /// Panics if the field does not fit or the value needs more bits.
    pub fn load_uint(&mut self, offset: usize, width: usize, value: u128) {
        assert!(offset + width <= self.bits.len(), "field exceeds register");
        assert!(
            width == 128 || value < (1u128 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in 0..width {
            self.bits[offset + i] = (value >> i) & 1 == 1;
        }
    }

    /// Reads bits `offset..offset + width` as a little-endian unsigned
    /// integer.
    ///
    /// # Panics
    ///
    /// Panics if the field does not fit or exceeds 128 bits.
    #[must_use]
    pub fn read_uint(&self, offset: usize, width: usize) -> u128 {
        assert!(offset + width <= self.bits.len(), "field exceeds register");
        assert!(width <= 128, "read wider than u128");
        let mut v = 0u128;
        for i in (0..width).rev() {
            v = (v << 1) | u128::from(self.bits[offset + i]);
        }
        v
    }

    /// Applies one gate.
    ///
    /// # Errors
    ///
    /// Returns [`NonClassicalGate`] if the gate is not a basis-state
    /// permutation.
    pub fn apply(&mut self, gate: Gate) -> Result<(), NonClassicalGate> {
        match gate {
            Gate::X(q) => {
                let i = q.index() as usize;
                self.bits[i] = !self.bits[i];
            }
            Gate::Cnot { control, target } => {
                if self.bits[control.index() as usize] {
                    let t = target.index() as usize;
                    self.bits[t] = !self.bits[t];
                }
            }
            Gate::Toffoli { c1, c2, target } => {
                if self.bits[c1.index() as usize] && self.bits[c2.index() as usize] {
                    let t = target.index() as usize;
                    self.bits[t] = !self.bits[t];
                }
            }
            other => {
                return Err(NonClassicalGate {
                    gate: other,
                    position: usize::MAX,
                })
            }
        }
        Ok(())
    }

    /// Runs a whole circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NonClassicalGate`] (with its position) on the first
    /// non-classical gate; the state reflects all gates before it.
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), NonClassicalGate> {
        assert!(
            circuit.num_qubits() as usize <= self.bits.len(),
            "circuit register larger than state"
        );
        for (position, &gate) in circuit.gates().iter().enumerate() {
            self.apply(gate).map_err(|e| NonClassicalGate {
                gate: e.gate,
                position,
            })?;
        }
        Ok(())
    }
}

impl core::fmt::Display for ClassicalState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_and_cnot_semantics() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.cnot(0, 1);
        let mut s = ClassicalState::zeros(2);
        s.run(&c).unwrap();
        assert_eq!(s.bits(), &[true, true]);
    }

    #[test]
    fn toffoli_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                let mut c = Circuit::new(3);
                c.toffoli(0, 1, 2);
                let mut s = ClassicalState::from_bits(&[a, b, false]);
                s.run(&c).unwrap();
                assert_eq!(s.bit(2), a && b, "a={a}, b={b}");
            }
        }
    }

    #[test]
    fn uint_round_trip() {
        let mut s = ClassicalState::zeros(16);
        s.load_uint(3, 8, 173);
        assert_eq!(s.read_uint(3, 8), 173);
        assert_eq!(s.read_uint(0, 3), 0);
    }

    #[test]
    fn non_classical_gate_reports_position() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.h(1);
        let mut s = ClassicalState::zeros(2);
        let err = s.run(&c).unwrap_err();
        assert_eq!(err.position(), 1);
        assert!(err.to_string().contains("h q1"));
        // Gates before the failure were applied.
        assert!(s.bit(0));
    }

    #[test]
    fn reversibility() {
        // Running a classical circuit twice (self-inverse gates) restores
        // the input.
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.cnot(2, 3);
        c.x(1);
        let mut twice = c.clone();
        let reversed: Vec<Gate> = c.gates().iter().rev().copied().collect();
        for g in reversed {
            twice.push(g);
        }
        let input = [true, false, true, true];
        let mut s = ClassicalState::from_bits(&input);
        s.run(&twice).unwrap();
        assert_eq!(s.bits(), &input);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn load_uint_overflow_panics() {
        let mut s = ClassicalState::zeros(4);
        s.load_uint(0, 2, 7);
    }

    #[test]
    fn display_is_bitstring() {
        let s = ClassicalState::from_bits(&[true, false, true]);
        assert_eq!(s.to_string(), "101");
    }
}
