//! Gate decomposition passes.
//!
//! The paper's cost rule — "the time to perform a single fault-tolerant
//! toffoli is equal to the time for fifteen two qubit gates" (§5.1) — is
//! the textbook Toffoli network: 6 CNOTs, 7 T/T†-class phase gates and 2
//! Hadamards, fifteen gates total. This pass materializes that network so
//! the rule is generated structure rather than a constant.

use crate::circuit::Circuit;
use crate::gate::{Gate, QubitId};

/// Number of elementary gates in the standard Toffoli decomposition.
pub const TOFFOLI_DECOMPOSITION_GATES: usize = 15;

/// Replaces every Toffoli with the standard 15-gate CNOT + T + H network;
/// all other gates pass through unchanged.
///
/// The T† gates in the network are emitted as `T` markers too (our IR
/// tracks gate *class*, and T/T† are cost-identical fault-tolerantly); the
/// count and dependency structure are exact.
///
/// # Examples
///
/// ```
/// use cqla_circuit::{decompose_toffolis, Circuit, TOFFOLI_DECOMPOSITION_GATES};
///
/// let mut c = Circuit::new(3);
/// c.toffoli(0, 1, 2);
/// let lowered = decompose_toffolis(&c);
/// assert_eq!(lowered.len(), TOFFOLI_DECOMPOSITION_GATES);
/// assert_eq!(lowered.counts().toffoli, 0);
/// ```
#[must_use]
pub fn decompose_toffolis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for &gate in circuit.gates() {
        match gate {
            Gate::Toffoli { c1, c2, target } => {
                emit_toffoli(&mut out, c1, c2, target);
            }
            other => out.push(other),
        }
    }
    out
}

/// The standard network (Nielsen & Chuang Fig 4.9), in execution order.
fn emit_toffoli(out: &mut Circuit, a: QubitId, b: QubitId, t: QubitId) {
    out.push(Gate::H(t));
    out.push(Gate::Cnot {
        control: b,
        target: t,
    });
    out.push(Gate::T(t)); // T†
    out.push(Gate::Cnot {
        control: a,
        target: t,
    });
    out.push(Gate::T(t));
    out.push(Gate::Cnot {
        control: b,
        target: t,
    });
    out.push(Gate::T(t)); // T†
    out.push(Gate::Cnot {
        control: a,
        target: t,
    });
    out.push(Gate::T(b));
    out.push(Gate::T(t));
    out.push(Gate::Cnot {
        control: a,
        target: b,
    });
    out.push(Gate::H(t));
    out.push(Gate::T(a));
    out.push(Gate::T(b)); // T†
    out.push(Gate::Cnot {
        control: a,
        target: b,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DependencyDag;

    #[test]
    fn one_toffoli_is_fifteen_gates() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        let lowered = decompose_toffolis(&c);
        assert_eq!(lowered.len(), 15);
        let counts = lowered.counts();
        assert_eq!(counts.cnot, 6);
        assert_eq!(counts.single_qubit, 9); // 7 T-class + 2 H
        assert_eq!(counts.toffoli, 0);
    }

    #[test]
    fn non_toffoli_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cnot(0, 1);
        c.toffoli(0, 1, 2);
        c.measure(2);
        let lowered = decompose_toffolis(&c);
        assert_eq!(lowered.len(), 3 + 15);
        assert_eq!(lowered.counts().measure, 1);
    }

    #[test]
    fn decomposition_cost_matches_the_papers_rule() {
        // The IR's cost weight and the generated network agree.
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        let lowered = decompose_toffolis(&c);
        assert_eq!(
            lowered.len() as u64,
            c.gates()[0].two_qubit_gate_equivalents()
        );
    }

    #[test]
    fn decomposed_adder_depth_grows_but_stays_logarithmic() {
        // Draper-like shape: two dependent toffoli layers.
        let mut c = Circuit::new(6);
        c.toffoli(0, 1, 2);
        c.toffoli(3, 4, 5);
        c.toffoli(2, 5, 0);
        let lowered = decompose_toffolis(&c);
        let before = DependencyDag::new(&c).depth();
        let after = DependencyDag::new(&lowered).depth();
        assert!(after > before);
        // The 15-gate network is ~13 layers deep serially on the target.
        assert!(after <= before * 15);
    }

    #[test]
    fn register_size_preserved() {
        let mut c = Circuit::new(10);
        c.toffoli(7, 8, 9);
        assert_eq!(decompose_toffolis(&c).num_qubits(), 10);
    }
}
