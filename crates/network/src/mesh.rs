//! The CQLA's 2D mesh interconnect: node grid, XY routing, link loads.
//!
//! The CQLA arranges its tiles and compute blocks in a mesh connected by
//! teleportation channels (paper §2, §6). Messages are logical-qubit
//! teleports; this module routes them dimension-ordered (X then Y) and
//! reports per-link congestion, from which communication time estimates
//! follow (time ≈ max link load × per-message service when transfers
//! pipeline).

use std::collections::HashMap;

/// A node (tile or compute block) position on the mesh.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NodeCoord {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl NodeCoord {
    /// Creates a node coordinate.
    #[must_use]
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }
}

impl core::fmt::Display for NodeCoord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A directed mesh link between adjacent nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Source node.
    pub from: NodeCoord,
    /// Destination node (adjacent to `from`).
    pub to: NodeCoord,
}

/// A rectangular mesh of teleportation-connected nodes.
///
/// # Examples
///
/// ```
/// use cqla_network::{Mesh, NodeCoord};
///
/// let mesh = Mesh::new(4, 4);
/// let route = mesh.xy_route(NodeCoord::new(0, 0), NodeCoord::new(3, 2));
/// assert_eq!(route.len(), 5); // 3 hops in X, then 2 in Y
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Mesh {
    cols: u32,
    rows: u32,
}

impl Mesh {
    /// Creates a `cols × rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(cols: u32, rows: u32) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        Self { cols, rows }
    }

    /// Square mesh with at least `nodes` nodes.
    #[must_use]
    pub fn square_for(nodes: u32) -> Self {
        let side = (f64::from(nodes).sqrt().ceil() as u32).max(1);
        Self::new(side, side)
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total nodes.
    #[must_use]
    pub fn num_nodes(&self) -> u64 {
        u64::from(self.cols) * u64::from(self.rows)
    }

    /// All node coordinates in row-major order.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeCoord> {
        let mut v = Vec::with_capacity(self.num_nodes() as usize);
        for y in 0..self.rows {
            for x in 0..self.cols {
                v.push(NodeCoord::new(x, y));
            }
        }
        v
    }

    /// `true` if the coordinate is on the mesh.
    #[must_use]
    pub fn contains(&self, c: NodeCoord) -> bool {
        c.x < self.cols && c.y < self.rows
    }

    /// Dimension-ordered (X-then-Y) route as the sequence of directed
    /// links traversed. Empty when `from == to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the mesh.
    #[must_use]
    pub fn xy_route(&self, from: NodeCoord, to: NodeCoord) -> Vec<Link> {
        assert!(self.contains(from), "origin {from} off mesh");
        assert!(self.contains(to), "destination {to} off mesh");
        let mut links = Vec::new();
        let mut cur = from;
        while cur.x != to.x {
            let next = NodeCoord::new(if to.x > cur.x { cur.x + 1 } else { cur.x - 1 }, cur.y);
            links.push(Link {
                from: cur,
                to: next,
            });
            cur = next;
        }
        while cur.y != to.y {
            let next = NodeCoord::new(cur.x, if to.y > cur.y { cur.y + 1 } else { cur.y - 1 });
            links.push(Link {
                from: cur,
                to: next,
            });
            cur = next;
        }
        links
    }

    /// Routes every `(source, destination, messages)` demand over XY paths
    /// and returns the per-link message counts.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is off the mesh.
    #[must_use]
    pub fn link_loads<I>(&self, demands: I) -> HashMap<Link, u64>
    where
        I: IntoIterator<Item = (NodeCoord, NodeCoord, u64)>,
    {
        let mut loads = HashMap::new();
        for (src, dst, count) in demands {
            for link in self.xy_route(src, dst) {
                *loads.entry(link).or_insert(0) += count;
            }
        }
        loads
    }

    /// The maximum per-link load of a demand set — the pipelined
    /// communication-time bound in message-service units.
    #[must_use]
    pub fn max_link_load<I>(&self, demands: I) -> u64
    where
        I: IntoIterator<Item = (NodeCoord, NodeCoord, u64)>,
    {
        self.link_loads(demands)
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

impl core::fmt::Display for Mesh {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{} mesh", self.cols, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_lengths_are_manhattan() {
        let mesh = Mesh::new(5, 5);
        let route = mesh.xy_route(NodeCoord::new(4, 4), NodeCoord::new(1, 0));
        assert_eq!(route.len(), 7);
        // Links chain correctly.
        for pair in route.windows(2) {
            assert_eq!(pair[0].to, pair[1].from);
        }
        assert_eq!(route[0].from, NodeCoord::new(4, 4));
        assert_eq!(route.last().unwrap().to, NodeCoord::new(1, 0));
    }

    #[test]
    fn self_route_is_empty() {
        let mesh = Mesh::new(3, 3);
        assert!(mesh
            .xy_route(NodeCoord::new(1, 1), NodeCoord::new(1, 1))
            .is_empty());
    }

    #[test]
    fn x_before_y() {
        let mesh = Mesh::new(3, 3);
        let route = mesh.xy_route(NodeCoord::new(0, 0), NodeCoord::new(2, 2));
        // First two links move in X, last two in Y.
        assert_eq!(route[0].to, NodeCoord::new(1, 0));
        assert_eq!(route[1].to, NodeCoord::new(2, 0));
        assert_eq!(route[2].to, NodeCoord::new(2, 1));
        assert_eq!(route[3].to, NodeCoord::new(2, 2));
    }

    #[test]
    fn link_loads_accumulate() {
        let mesh = Mesh::new(3, 1);
        let a = NodeCoord::new(0, 0);
        let c = NodeCoord::new(2, 0);
        let loads = mesh.link_loads([(a, c, 2), (a, NodeCoord::new(1, 0), 3)]);
        let first_link = Link {
            from: a,
            to: NodeCoord::new(1, 0),
        };
        assert_eq!(loads[&first_link], 5);
        assert_eq!(mesh.max_link_load([(a, c, 2)]), 2);
    }

    #[test]
    fn square_for_covers_requested_nodes() {
        for n in [1u32, 2, 9, 10, 100, 101] {
            let mesh = Mesh::square_for(n);
            assert!(mesh.num_nodes() >= u64::from(n), "n={n}: {mesh}");
            assert_eq!(mesh.cols(), mesh.rows());
        }
    }

    #[test]
    fn nodes_enumerates_all() {
        let mesh = Mesh::new(3, 2);
        assert_eq!(mesh.nodes().len(), 6);
        assert_eq!(mesh.num_nodes(), 6);
    }

    #[test]
    #[should_panic(expected = "off mesh")]
    fn route_rejects_out_of_bounds() {
        let mesh = Mesh::new(2, 2);
        let _ = mesh.xy_route(NodeCoord::new(0, 0), NodeCoord::new(5, 0));
    }

    #[test]
    fn empty_demand_has_zero_load() {
        let mesh = Mesh::new(2, 2);
        assert_eq!(mesh.max_link_load(std::iter::empty()), 0);
    }
}
