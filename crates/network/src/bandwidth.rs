//! Superblock perimeter bandwidth (paper §5.1 "Superblocks", Fig 6b).
//!
//! Compute blocks gang into *superblocks* to exploit locality. Demand for
//! operand traffic grows with the block count `B` (every block wants
//! operands), but supply grows only with the perimeter `∝ √B` — so there
//! is a crossover beyond which growing a superblock starves it. The paper
//! finds the crossover at ~36 blocks for both codes.
//!
//! Units: logical-qubit crossings per fault-tolerant Toffoli time. Demand
//! per block is 3 operand qubits per Toffoli (paper §6.1); supply per
//! perimeter channel is one logical qubit per channel service time (EPR
//! restock + purification, from [`EprModel`]).

use cqla_ecc::{Code, EccMetrics, Level};
use cqla_iontrap::TechnologyParams;
use cqla_units::Seconds;

use crate::epr::EprModel;

/// Operand qubits moved to/from memory per Toffoli per block (paper §6.1:
/// "the transfer of three qubits to and from memory").
pub const OPERANDS_PER_TOFFOLI: f64 = 3.0;

/// Data qubits per compute block (each block holds nine logical data
/// qubits, paper §3.2) — the worst-case traffic per block per gate window.
pub const WORST_CASE_QUBITS_PER_BLOCK: f64 = 9.0;

/// The perimeter-bandwidth model for compute superblocks of one code.
///
/// # Examples
///
/// ```
/// use cqla_network::SuperblockBandwidth;
/// use cqla_ecc::Code;
/// use cqla_iontrap::TechnologyParams;
///
/// let model = SuperblockBandwidth::new(Code::Steane713, &TechnologyParams::projected());
/// let b = model.crossover_blocks();
/// // Paper: "the cross-over point is 36 compute blocks per superblock".
/// assert!((16..=64).contains(&b), "crossover {b}");
/// ```
#[derive(Debug, Clone)]
pub struct SuperblockBandwidth {
    code: Code,
    toffoli_time: Seconds,
    channel_service: Seconds,
    channels_per_edge: f64,
}

impl SuperblockBandwidth {
    /// Builds the model for `code` at technology point `tech`.
    ///
    /// Channels per perimeter block edge follow the paper's §5.1/§6.1
    /// bandwidth discussion: 2 for the Steane code, 3 for Bacon-Shor
    /// (whose larger data blocks and shorter EC windows demand more
    /// concurrent streams).
    #[must_use]
    pub fn new(code: Code, tech: &TechnologyParams) -> Self {
        let metrics = EccMetrics::compute(code, Level::TWO, tech);
        let epr = EprModel::new(tech);
        Self {
            code,
            toffoli_time: metrics.toffoli_time(tech),
            channel_service: epr.logical_service_time(code),
            channels_per_edge: f64::from(code.teleport_channels_required().max(2)),
        }
    }

    /// The code this model is for.
    #[must_use]
    pub fn code(&self) -> Code {
        self.code
    }

    /// Demand: operand qubits per Toffoli window for a `blocks`-block
    /// superblock running the Draper adder flat out.
    #[must_use]
    pub fn required_draper(&self, blocks: u32) -> f64 {
        OPERANDS_PER_TOFFOLI * f64::from(blocks)
    }

    /// Worst-case demand: the whole block contents (9 data qubits per
    /// block) per Toffoli window — the paper's steep third curve.
    #[must_use]
    pub fn required_worst_case(&self, blocks: u32) -> f64 {
        WORST_CASE_QUBITS_PER_BLOCK * f64::from(blocks)
    }

    /// Supply: logical qubits the perimeter can pass per Toffoli window —
    /// `4√B` block edges × channels per edge × (Toffoli time / channel
    /// service time).
    #[must_use]
    pub fn available(&self, blocks: u32) -> f64 {
        let perimeter_edges = 4.0 * f64::from(blocks).sqrt();
        perimeter_edges * self.channels_per_edge * (self.toffoli_time / self.channel_service)
    }

    /// The largest superblock whose perimeter still satisfies the Draper
    /// demand — the Fig 6b crossover.
    #[must_use]
    pub fn crossover_blocks(&self) -> u32 {
        // available = required: 4√B·c·ρ = 3B  ⇒  √B = 4cρ/3.
        let rho = self.toffoli_time / self.channel_service;
        let sqrt_b = 4.0 * self.channels_per_edge * rho / OPERANDS_PER_TOFFOLI;
        (sqrt_b * sqrt_b).round().max(1.0) as u32
    }

    /// One Fig 6b sample: `(required_draper, required_worst, available)`
    /// at a block count.
    #[must_use]
    pub fn sample(&self, blocks: u32) -> BandwidthSample {
        BandwidthSample {
            blocks,
            required_draper: self.required_draper(blocks),
            required_worst: self.required_worst_case(blocks),
            available: self.available(blocks),
        }
    }
}

/// One point of the Fig 6b curves.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BandwidthSample {
    /// Superblock size in compute blocks.
    pub blocks: u32,
    /// Draper-adder operand demand (qubits per Toffoli window).
    pub required_draper: f64,
    /// Worst-case demand.
    pub required_worst: f64,
    /// Perimeter supply.
    pub available: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(code: Code) -> SuperblockBandwidth {
        SuperblockBandwidth::new(code, &TechnologyParams::projected())
    }

    #[test]
    fn demand_linear_supply_sqrt() {
        let m = model(Code::Steane713);
        assert_eq!(m.required_draper(40), 2.0 * m.required_draper(20));
        let ratio = m.available(64) / m.available(16);
        assert!((ratio - 2.0).abs() < 1e-9, "sqrt scaling broken: {ratio}");
    }

    #[test]
    fn worst_case_is_three_times_draper() {
        let m = model(Code::BaconShor913);
        assert!((m.required_worst_case(10) / m.required_draper(10) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn crossover_in_paper_ballpark_for_both_codes() {
        // Paper: 36 blocks "immaterial of what error correction code is
        // used". Our structural model lands both codes in the same few-tens
        // band.
        for code in Code::ALL {
            let b = model(code).crossover_blocks();
            assert!((10..=80).contains(&b), "{code}: crossover {b}");
        }
    }

    #[test]
    fn supply_exceeds_demand_below_crossover_only() {
        for code in Code::ALL {
            let m = model(code);
            let b = m.crossover_blocks();
            if b > 4 {
                let below = m.sample(b / 2);
                assert!(below.available > below.required_draper, "{code} below");
            }
            let above = m.sample(b * 2);
            assert!(above.available < above.required_draper, "{code} above");
        }
    }

    #[test]
    fn samples_are_consistent() {
        let m = model(Code::Steane713);
        let s = m.sample(36);
        assert_eq!(s.blocks, 36);
        assert!((s.required_draper - 108.0).abs() < 1e-9);
        assert!((s.required_worst - 324.0).abs() < 1e-9);
        assert!(s.available > 0.0);
    }
}
