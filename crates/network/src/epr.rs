//! EPR-pair distribution and purification — the fuel of the teleportation
//! interconnect (paper §2, citing Dür et al. quantum repeaters).
//!
//! Every logical teleport consumes one purified EPR pair per physical data
//! ion. Pairs are generated locally, distributed through teleportation
//! islands, and purified: each purification round consumes two noisy pairs
//! to produce one better pair, roughly squaring the infidelity. The channel
//! service rate — how fast one teleportation channel can restock and hand
//! over purified pairs for a whole logical qubit — is what limits perimeter
//! bandwidth in Fig 6b.

use cqla_ecc::{Code, EccMetrics, Level};
use cqla_iontrap::{PhysicalOp, TechnologyParams};
use cqla_units::{Probability, Seconds};

/// Purification-tree depth applied to every delivered pair (3 levels ≈
/// infidelity to the eighth power before the gate-error floor — ample
/// headroom for level-2 teleportation under projected parameters).
pub const DEFAULT_PURIFICATION_ROUNDS: u32 = 3;

/// The EPR distribution/purification cost model.
///
/// # Examples
///
/// ```
/// use cqla_network::EprModel;
/// use cqla_ecc::Code;
/// use cqla_iontrap::TechnologyParams;
///
/// let model = EprModel::new(&TechnologyParams::projected());
/// let st = model.logical_service_time(Code::Steane713);
/// let bs = model.logical_service_time(Code::BaconShor913);
/// // Both codes take on the order of a second per logical qubit…
/// assert!(st.as_secs() > 0.5 && st.as_secs() < 5.0);
/// // …with Bacon-Shor cheaper per pair (faster level-1 EC) despite more
/// // data ions.
/// assert!(bs < st);
/// ```
#[derive(Debug, Clone)]
pub struct EprModel {
    tech: TechnologyParams,
    purification_rounds: u32,
}

impl EprModel {
    /// Builds the model at a technology point with default purification.
    #[must_use]
    pub fn new(tech: &TechnologyParams) -> Self {
        Self {
            tech: tech.clone(),
            purification_rounds: DEFAULT_PURIFICATION_ROUNDS,
        }
    }

    /// Overrides the number of purification rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero (unpurified channels are not usable at
    /// level-2 fidelities).
    #[must_use]
    pub fn with_purification_rounds(mut self, rounds: u32) -> Self {
        assert!(rounds > 0, "at least one purification round is required");
        self.purification_rounds = rounds;
        self
    }

    /// Purification rounds per delivered pair.
    #[must_use]
    pub fn purification_rounds(&self) -> u32 {
        self.purification_rounds
    }

    /// Time to generate one raw Bell pair locally: H + CNOT + a shuttle
    /// into the channel.
    #[must_use]
    pub fn pair_generation_time(&self) -> Seconds {
        self.tech.duration(PhysicalOp::SingleGate)
            + self.tech.duration(PhysicalOp::DoubleGate)
            + self.tech.duration(PhysicalOp::Move) * 2.0
    }

    /// Infidelity of a raw pair after being distributed across `hops`
    /// teleportation-island segments (union bound over per-hop movement
    /// failures plus the two-qubit gate errors at each island).
    #[must_use]
    pub fn raw_pair_infidelity(&self, hops: u32) -> Probability {
        let per_hop = self.tech.failure_rate(PhysicalOp::Move).value()
            + self.tech.failure_rate(PhysicalOp::DoubleGate).value();
        Probability::saturating(per_hop * f64::from(hops.max(1)))
    }

    /// Infidelity after purification: each round roughly squares the error
    /// (with a small constant from the round's own gates).
    #[must_use]
    pub fn purified_infidelity(&self, hops: u32) -> Probability {
        let gate_err = self.tech.failure_rate(PhysicalOp::DoubleGate).value();
        let mut e = self.raw_pair_infidelity(hops).value();
        for _ in 0..self.purification_rounds {
            e = e * e + gate_err;
        }
        Probability::saturating(e)
    }

    /// Purification rounds needed to push a raw pair below `target`
    /// infidelity, or `None` if purification cannot reach it (gate errors
    /// floor the achievable fidelity).
    #[must_use]
    pub fn rounds_to_reach(&self, hops: u32, target: Probability) -> Option<u32> {
        let gate_err = self.tech.failure_rate(PhysicalOp::DoubleGate).value();
        if gate_err >= target.value() {
            return None;
        }
        let mut e = self.raw_pair_infidelity(hops).value();
        for round in 0..=16 {
            if e <= target.value() {
                return Some(round);
            }
            e = e * e + gate_err;
        }
        None
    }

    /// Time one purification round takes at the channel endpoints: two
    /// level-1 error corrections (one per endpoint block) bracketing the
    /// round's gates and measurement.
    #[must_use]
    pub fn purification_round_time(&self, code: Code) -> Seconds {
        let ec_l1 = EccMetrics::compute(code, Level::ONE, &self.tech).ec_time();
        ec_l1 * 2.0
            + self.tech.duration(PhysicalOp::DoubleGate) * 2.0
            + self.tech.duration(PhysicalOp::Measure)
    }

    /// Raw pairs consumed per delivered purified pair: `2^rounds` (the
    /// purification tree halves the pair count at each level).
    #[must_use]
    pub fn raw_pairs_per_delivered(&self) -> u64 {
        1u64 << self.purification_rounds
    }

    /// Purification operations per delivered pair: `2^rounds − 1` (one per
    /// internal node of the purification tree, serialized through the
    /// channel endpoint).
    #[must_use]
    pub fn purification_ops_per_delivered(&self) -> u64 {
        (1u64 << self.purification_rounds) - 1
    }

    /// Channel service time for one *logical* qubit: restocking and
    /// purifying one pair per physical data ion of the level-2 block.
    ///
    /// This is the reciprocal throughput of one teleportation channel and
    /// the quantity the Fig 6b bandwidth analysis divides by.
    #[must_use]
    pub fn logical_service_time(&self, code: Code) -> Seconds {
        let data = code.data_qubits(Level::TWO);
        let per_delivered =
            self.purification_round_time(code) * self.purification_ops_per_delivered() as f64;
        let raw_pairs = data * self.raw_pairs_per_delivered();
        per_delivered * data as f64 + self.pair_generation_time() * raw_pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EprModel {
        EprModel::new(&TechnologyParams::projected())
    }

    #[test]
    fn purification_improves_fidelity() {
        let m = model();
        for hops in [1, 10, 100] {
            assert!(
                m.purified_infidelity(hops) < m.raw_pair_infidelity(hops),
                "hops {hops}"
            );
        }
    }

    #[test]
    fn more_hops_need_more_rounds() {
        let m = model();
        // Target above the two-qubit-gate error floor (1e-7 projected).
        let target = Probability::saturating(5e-7);
        let near = m.rounds_to_reach(1, target).unwrap();
        let far = m.rounds_to_reach(10_000, target).unwrap();
        assert!(far > near, "near {near}, far {far}");
    }

    #[test]
    fn unreachable_target_is_none() {
        let m = model();
        // Below the two-qubit gate error there is nothing purification can
        // do.
        assert_eq!(m.rounds_to_reach(1, Probability::saturating(1e-12)), None);
    }

    #[test]
    fn service_time_scales_with_data_qubits_per_round_cost() {
        let m = model();
        let st = m.logical_service_time(Code::Steane713);
        let bs = m.logical_service_time(Code::BaconShor913);
        // Steane: 49 ions at slow L1 EC; Bacon-Shor: 81 ions at fast L1 EC.
        // The per-pair EC dominates, so Steane's channel is slower.
        assert!(st > bs);
        assert!(st.as_secs() < 10.0, "service time {st} implausibly large");
    }

    #[test]
    fn round_time_dominated_by_level1_ec() {
        let m = model();
        for code in Code::ALL {
            let round = m.purification_round_time(code);
            let ec =
                EccMetrics::compute(code, Level::ONE, &TechnologyParams::projected()).ec_time();
            assert!(round >= ec * 2.0, "{code}");
            assert!(round < ec * 2.5, "{code}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one purification round")]
    fn zero_rounds_rejected() {
        let _ = model().with_purification_rounds(0);
    }
}
