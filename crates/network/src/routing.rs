//! Event-driven message routing on the mesh.
//!
//! [`Mesh::max_link_load`](crate::Mesh::max_link_load) gives the analytic
//! congestion bound; this module actually *runs* the traffic: messages are
//! teleported hop by hop through per-link channel pools, so queueing,
//! pipelining and head-of-line effects show up in the completion times.
//! Used to sanity-check the Fig 8b communication estimates.

use std::collections::HashMap;

use cqla_sim::{ChannelPool, SimTime};
use cqla_units::Seconds;

use crate::mesh::{Link, Mesh, NodeCoord};

/// Configuration of a routing run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoutingConfig {
    /// Teleportation channels per directed link.
    pub channels_per_link: u32,
    /// Service time for one logical qubit across one link.
    pub hop_service: Seconds,
}

impl RoutingConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `channels_per_link` is zero or `hop_service` is invalid.
    #[must_use]
    pub fn new(channels_per_link: u32, hop_service: Seconds) -> Self {
        assert!(channels_per_link > 0, "links need at least one channel");
        assert!(
            hop_service.is_valid() && hop_service.as_secs() > 0.0,
            "hop service must be positive"
        );
        Self {
            channels_per_link,
            hop_service,
        }
    }
}

/// Result of routing a traffic pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingReport {
    /// Per-message completion times, in input order.
    pub completions: Seconds,
    /// Latest completion across all messages.
    pub makespan: Seconds,
    /// Mean message latency.
    pub mean_latency: Seconds,
    /// Messages routed.
    pub messages: usize,
    /// Busiest link's total busy time.
    pub max_link_busy: Seconds,
}

/// The routing simulator.
///
/// # Examples
///
/// ```
/// use cqla_network::{Mesh, NodeCoord, RoutingConfig, RoutingSim};
/// use cqla_units::Seconds;
///
/// let mesh = Mesh::new(4, 1);
/// let config = RoutingConfig::new(1, Seconds::new(1.0));
/// let msgs = vec![(NodeCoord::new(0, 0), NodeCoord::new(3, 0))];
/// let report = RoutingSim::new(&mesh).run(&msgs, &config);
/// // Three hops, store-and-forward: 3 seconds.
/// assert!((report.makespan.as_secs() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingSim {
    mesh: Mesh,
}

impl RoutingSim {
    /// Creates a simulator over `mesh`.
    #[must_use]
    pub fn new(mesh: &Mesh) -> Self {
        Self { mesh: *mesh }
    }

    /// Routes every `(src, dst)` message (all injected at time zero) and
    /// reports completion statistics.
    ///
    /// Messages are processed in input order; each walks its XY route
    /// store-and-forward, booking one channel per link.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is off the mesh.
    #[must_use]
    pub fn run(
        &self,
        messages: &[(NodeCoord, NodeCoord)],
        config: &RoutingConfig,
    ) -> RoutingReport {
        let mut pools: HashMap<Link, ChannelPool> = HashMap::new();
        let mut makespan = SimTime::ZERO;
        let mut total = Seconds::ZERO;
        let mut done = 0usize;
        for &(src, dst) in messages {
            let mut at = SimTime::ZERO;
            for link in self.mesh.xy_route(src, dst) {
                let pool = pools
                    .entry(link)
                    .or_insert_with(|| ChannelPool::new(config.channels_per_link as usize));
                at = pool.book(at, config.hop_service).end;
            }
            makespan = makespan.max(at);
            total += at.to_duration();
            done += 1;
        }
        let max_link_busy = pools
            .values()
            .map(ChannelPool::busy_time)
            .fold(Seconds::ZERO, Seconds::max);
        RoutingReport {
            completions: total,
            makespan: makespan.to_duration(),
            mean_latency: if done == 0 {
                Seconds::ZERO
            } else {
                total / done as f64
            },
            messages: done,
            max_link_busy,
        }
    }

    /// Routes the full all-to-all pattern (one message per ordered pair).
    #[must_use]
    pub fn run_all_to_all(&self, config: &RoutingConfig) -> RoutingReport {
        let nodes = self.mesh.nodes();
        let mut msgs = Vec::with_capacity(nodes.len() * (nodes.len() - 1));
        for &s in &nodes {
            for &d in &nodes {
                if s != d {
                    msgs.push((s, d));
                }
            }
        }
        self.run(&msgs, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alltoall::AllToAll;

    fn cfg(channels: u32) -> RoutingConfig {
        RoutingConfig::new(channels, Seconds::new(1.0))
    }

    #[test]
    fn disjoint_rows_route_in_parallel() {
        let mesh = Mesh::new(4, 4);
        let msgs: Vec<_> = (0..4)
            .map(|y| (NodeCoord::new(0, y), NodeCoord::new(3, y)))
            .collect();
        let report = RoutingSim::new(&mesh).run(&msgs, &cfg(1));
        assert!((report.makespan.as_secs() - 3.0).abs() < 1e-9);
        assert_eq!(report.messages, 4);
    }

    #[test]
    fn shared_link_serializes() {
        let mesh = Mesh::new(2, 1);
        let msgs = vec![(NodeCoord::new(0, 0), NodeCoord::new(1, 0)); 5];
        let report = RoutingSim::new(&mesh).run(&msgs, &cfg(1));
        assert!((report.makespan.as_secs() - 5.0).abs() < 1e-9);
        assert!((report.max_link_busy.as_secs() - 5.0).abs() < 1e-9);
        // Two channels halve it (pipelined pairs).
        let faster = RoutingSim::new(&mesh).run(&msgs, &cfg(2));
        assert!((faster.makespan.as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_to_all_completion_tracks_the_congestion_bound() {
        for p in [2u32, 4] {
            let mesh = Mesh::new(p, p);
            let report = RoutingSim::new(&mesh).run_all_to_all(&cfg(1));
            let bound = AllToAll::on_mesh(&mesh).max_link_load() as f64;
            let ratio = report.makespan.as_secs() / bound;
            // Pipelined store-and-forward: between the bound itself and a
            // few times it (path lengths add).
            assert!((1.0..4.0).contains(&ratio), "p={p}: ratio {ratio}");
        }
    }

    #[test]
    fn more_channels_never_slow_things_down() {
        let mesh = Mesh::new(3, 3);
        let narrow = RoutingSim::new(&mesh).run_all_to_all(&cfg(1));
        let wide = RoutingSim::new(&mesh).run_all_to_all(&cfg(4));
        assert!(wide.makespan <= narrow.makespan);
        assert!(wide.mean_latency <= narrow.mean_latency);
    }

    #[test]
    fn empty_traffic_is_instant() {
        let mesh = Mesh::new(2, 2);
        let report = RoutingSim::new(&mesh).run(&[], &cfg(1));
        assert_eq!(report.makespan, Seconds::ZERO);
        assert_eq!(report.messages, 0);
        assert_eq!(report.mean_latency, Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = RoutingConfig::new(0, Seconds::new(1.0));
    }
}
