//! Teleportation interconnect models for the CQLA (paper §2, §5.1, §6).
//!
//! Quantum data cannot be copied (no-cloning), so every operand physically
//! travels: locally by ballistic shuttling, at distance by teleportation
//! through pre-distributed, purified EPR pairs. This crate models that
//! fabric:
//!
//! * [`EprModel`] — pair generation, distribution infidelity, purification
//!   trees, and the resulting per-channel service rate,
//! * [`Mesh`] — the 2D interconnect with XY routing and link-load
//!   (congestion) accounting,
//! * [`AllToAll`] — the QFT's all-to-all personalized exchange and its
//!   bisection bottleneck (Fig 8b),
//! * [`SuperblockBandwidth`] — the perimeter supply-vs-demand model whose
//!   crossover sizes compute superblocks (Fig 6b).
//!
//! # Examples
//!
//! ```
//! use cqla_network::{Mesh, NodeCoord};
//!
//! let mesh = Mesh::new(8, 8);
//! // Uniform traffic: everyone sends one message to the node across.
//! let demands: Vec<_> = (0..8)
//!     .map(|y| (NodeCoord::new(0, y), NodeCoord::new(7, y), 1))
//!     .collect();
//! // Disjoint rows: no link carries more than one message.
//! assert_eq!(mesh.max_link_load(demands), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alltoall;
mod bandwidth;
mod epr;
mod mesh;
mod routing;

pub use alltoall::AllToAll;
pub use bandwidth::{
    BandwidthSample, SuperblockBandwidth, OPERANDS_PER_TOFFOLI, WORST_CASE_QUBITS_PER_BLOCK,
};
pub use epr::{EprModel, DEFAULT_PURIFICATION_ROUNDS};
pub use mesh::{Link, Mesh, NodeCoord};
pub use routing::{RoutingConfig, RoutingReport, RoutingSim};
