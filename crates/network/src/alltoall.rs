//! All-to-all personalized communication on the mesh (paper §6.1).
//!
//! The QFT demands that every node exchange a distinct message with every
//! other node. The paper leverages "a near-optimal algorithm proposed in
//! [Yang & Wang, pipelined all-to-all broadcast in all-port meshes]"; the
//! controlling quantity is the bisection bottleneck: with XY routing, the
//! most loaded mesh link carries Θ(p³) of the p² nodes' messages, and the
//! pipelined completion time is that load times the per-message service.

use crate::mesh::{Mesh, NodeCoord};

/// The schedule summary of an all-to-all personalized exchange on a mesh.
///
/// # Examples
///
/// ```
/// use cqla_network::{AllToAll, Mesh};
///
/// let mesh = Mesh::new(4, 4);
/// let schedule = AllToAll::on_mesh(&mesh);
/// assert_eq!(schedule.total_messages(), 16 * 15);
/// // Bisection bound: the worst link carries ~p³/4 messages (p = 4).
/// assert!(schedule.max_link_load() >= 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllToAll {
    total_messages: u64,
    max_link_load: u64,
    mesh_cols: u32,
    mesh_rows: u32,
}

impl AllToAll {
    /// Computes the exchange schedule for `mesh` (one message per ordered
    /// node pair, XY-routed).
    #[must_use]
    pub fn on_mesh(mesh: &Mesh) -> Self {
        let nodes = mesh.nodes();
        let mut demands: Vec<(NodeCoord, NodeCoord, u64)> = Vec::new();
        for &s in &nodes {
            for &d in &nodes {
                if s != d {
                    demands.push((s, d, 1));
                }
            }
        }
        let max_link_load = mesh.max_link_load(demands);
        let n = mesh.num_nodes();
        Self {
            total_messages: n * (n - 1),
            max_link_load,
            mesh_cols: mesh.cols(),
            mesh_rows: mesh.rows(),
        }
    }

    /// Messages exchanged: `N(N-1)` for `N` nodes.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Load on the most congested link — the pipelined completion time in
    /// message-service units.
    #[must_use]
    pub fn max_link_load(&self) -> u64 {
        self.max_link_load
    }

    /// Mesh shape the schedule was computed for.
    #[must_use]
    pub fn mesh_shape(&self) -> (u32, u32) {
        (self.mesh_cols, self.mesh_rows)
    }

    /// The analytic bisection bound for a square `p × p` mesh under XY
    /// routing: the central column links carry `(p/2)² · p / 2 / p = p³/8`…
    /// empirically `p³/4` in the symmetric direction pair; exposed for
    /// cross-checking.
    #[must_use]
    pub fn square_mesh_lower_bound(p: u32) -> u64 {
        // Messages from the left half (p²/2 nodes) to the right half
        // (p²/2 nodes) cross p horizontal cut links, in each direction.
        let half = u64::from(p) * u64::from(p) / 2;
        half * half / u64::from(p)
    }
}

impl core::fmt::Display for AllToAll {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "all-to-all on {}x{}: {} messages, max link load {}",
            self.mesh_cols, self.mesh_rows, self.total_messages, self.max_link_load
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        for p in [2u32, 3, 4, 5] {
            let mesh = Mesh::new(p, p);
            let s = AllToAll::on_mesh(&mesh);
            let n = u64::from(p) * u64::from(p);
            assert_eq!(s.total_messages(), n * (n - 1), "p={p}");
        }
    }

    #[test]
    fn max_load_meets_bisection_bound() {
        for p in [2u32, 4, 6] {
            let s = AllToAll::on_mesh(&Mesh::new(p, p));
            let bound = AllToAll::square_mesh_lower_bound(p);
            assert!(
                s.max_link_load() >= bound,
                "p={p}: load {} below bisection bound {bound}",
                s.max_link_load()
            );
            // XY routing should not exceed a few times the bound.
            assert!(
                s.max_link_load() <= 4 * bound.max(1),
                "p={p}: load {} far above bound {bound}",
                s.max_link_load()
            );
        }
    }

    #[test]
    fn load_grows_cubically_with_side() {
        let l2 = AllToAll::on_mesh(&Mesh::new(2, 2)).max_link_load();
        let l4 = AllToAll::on_mesh(&Mesh::new(4, 4)).max_link_load();
        let l8 = AllToAll::on_mesh(&Mesh::new(8, 8)).max_link_load();
        // Doubling the side should roughly 8x the bottleneck load.
        let r1 = l4 as f64 / l2 as f64;
        let r2 = l8 as f64 / l4 as f64;
        assert!((6.0..=12.0).contains(&r1), "ratio {r1}");
        assert!((6.0..=12.0).contains(&r2), "ratio {r2}");
    }

    #[test]
    fn single_node_mesh_is_trivial() {
        let s = AllToAll::on_mesh(&Mesh::new(1, 1));
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.max_link_load(), 0);
    }

    #[test]
    fn display() {
        let s = AllToAll::on_mesh(&Mesh::new(2, 2));
        assert!(s.to_string().contains("all-to-all on 2x2"));
    }
}
