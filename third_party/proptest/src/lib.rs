//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this in-tree crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, integer/float
//! range strategies, tuple and [`collection::vec`] combinators,
//! [`any`], [`ProptestConfig::with_cases`], and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the panic from the raw
//!   sampled inputs rather than a minimized counterexample.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name (plus the `PROPTEST_SEED` environment variable if
//!   set), so CI runs are reproducible; set `PROPTEST_SEED` to explore
//!   new corners of the input space.
//! - `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err`, which in a no-shrinking world is equivalent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies while sampling.
pub type TestRng = StdRng;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` randomized cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Derives the RNG seed for one test function: stable across runs unless
/// `PROPTEST_SEED` overrides the base.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CA5E);
    // FNV-1a over the test name, mixed with the base seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, u128);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // gen::<f64>() is uniform on [0, 1); scale and clamp so the upper
        // endpoint is reachable up to float rounding.
        let (lo, hi) = (*self.start(), *self.end());
        (lo + rng.gen::<f64>() * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, u128, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy over every value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of type `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Element-count specification for [`vec()`]: an exact `usize` or a
    /// `usize` range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror of the real crate's `prop` module path
/// (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng: $crate::TestRng = <$crate::TestRng as $crate::RandSeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest {}: case {}/{} failed (seed {}); set PROPTEST_SEED to vary inputs",
                            stringify!($name), case + 1, config.cases,
                            $crate::seed_for(stringify!($name)),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Re-export so [`proptest!`]'s expansion can seed the RNG via `$crate`
/// paths without requiring `rand` in the caller's dependency graph.
pub use rand::SeedableRng as RandSeedableRng;

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..10, b in 5u64..=5, p in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert_eq!(b, 5);
            prop_assert!((0.25..=0.75).contains(&p));
        }

        #[test]
        fn vec_and_tuple_compose(v in prop::collection::vec((0u8..4, any::<bool>()), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&(x, _)| x < 4));
        }

        #[test]
        fn prop_map_applies(doubled in (1u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled >= 2);
        }
    }

    #[test]
    fn seed_is_stable_per_name() {
        assert_eq!(super::seed_for("alpha"), super::seed_for("alpha"));
        assert_ne!(super::seed_for("alpha"), super::seed_for("beta"));
    }
}
