//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (as forward-looking
//! annotations on its data types); nothing serializes yet, and the build
//! environment cannot fetch the real serde from crates.io. These derives
//! therefore expand to empty marker-trait impls, keeping every
//! `#[derive(serde::Serialize, serde::Deserialize)]` attribute in the source
//! compiling unchanged. When real serialization lands, swapping the path
//! dependency back to crates.io `serde` requires no source edits.

use proc_macro::{Ident, TokenStream, TokenTree};

/// Extracts the type name a `derive` input declares, skipping attributes,
/// visibility, and the `struct`/`enum` keyword.
fn derived_type_name(input: TokenStream) -> Option<Ident> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = tt {
            let text = ident.to_string();
            if text == "struct" || text == "enum" || text == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return Some(name);
                }
                return None;
            }
        }
    }
    None
}

/// Emits `impl serde::TraitName for Type {}` for non-generic types.
///
/// Every serde-derived type in this workspace is a plain (non-generic)
/// struct or enum, so a blanket-free marker impl suffices. Generic types
/// would need bound propagation, which the real serde_derive provides.
fn marker_impl(trait_name: &str, input: TokenStream) -> TokenStream {
    match derived_type_name(input) {
        Some(name) => format!("impl serde::{trait_name} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// No-op `#[derive(Serialize)]`: emits an empty `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("Serialize", input)
}

/// No-op `#[derive(Deserialize)]`: emits an empty `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("Deserialize", input)
}
