//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace annotates its data types with
//! `#[derive(serde::Serialize, serde::Deserialize)]` but performs no actual
//! serialization, and the build environment has no crates.io access. This
//! crate supplies marker traits and re-exports the no-op derives from the
//! in-tree `serde_derive`, so the annotations compile as written and the
//! dependency can later be repointed at the real serde without source edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
