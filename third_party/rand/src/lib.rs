//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! implements exactly the API surface the workspace uses — `Rng::gen`,
//! `Rng::gen_range`, `SeedableRng::seed_from_u64`, and `rngs::StdRng` —
//! with the same call-site syntax as `rand 0.8`. The generator behind
//! `StdRng` is xoshiro256** seeded through SplitMix64: statistically
//! strong enough for the Monte Carlo experiments in `cqla-stabilizer`
//! (which assert quadratic logical-error scaling over 400k trials), while
//! remaining fully deterministic for a given seed.
//!
//! Not cryptographically secure, and the stream differs from upstream
//! `StdRng`; nothing in this workspace depends on either property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A low-level source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the full range for integers, `[0, 1)` for floats,
    /// fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (either `lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + uniform_u128(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                if span == u128::MAX {
                    return u128::sample(rng) as $t;
                }
                lo + uniform_u128(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, u128);

/// Uniform draw from `[0, span)` by rejection sampling (unbiased).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in a u128; values at or above
    // it would bias the modulo, so redraw (expected < 2 draws).
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v = u128::sample(rng);
        if v <= zone {
            return v % span;
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// state size with SplitMix64 (so similar seeds give unrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, per Blackman & Vigna's
            // recommendation for seeding xoshiro from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.s = [n0, n1, n2, n3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u128..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let dynish: &mut StdRng = &mut rng;
        let v = draw(dynish);
        assert!((0.0..1.0).contains(&v));
    }
}
