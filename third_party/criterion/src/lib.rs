//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this in-tree crate
//! implements the subset of criterion the bench targets use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`] — as a simple wall-clock harness: warm up briefly,
//! time batches until a measurement budget is spent, and report the
//! per-iteration mean, minimum, and maximum. No statistics engine, plots,
//! or baselines; repointing the dependency at real criterion later needs
//! no changes to the bench sources.
//!
//! Command-line compatibility with `cargo bench`: ignores the harness
//! flags cargo passes (`--bench`, `--test`, etc.) and treats the first
//! free argument as a substring filter on benchmark names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// The benchmark manager: registers, filters, runs, and reports benchmarks.
pub struct Criterion {
    filter: Option<String>,
    warm_up_time: Duration,
    measurement_time: Duration,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            ran: 0,
        }
    }
}

impl Criterion {
    /// Builds a `Criterion` from `cargo bench` command-line arguments:
    /// harness flags are ignored, the first free argument becomes a
    /// substring filter on benchmark names.
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Flags cargo's bench harness protocol may pass.
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--exact" => {}
                "--warm-up-time" => {
                    if let Some(secs) = args.next().and_then(|s| s.parse::<f64>().ok()) {
                        c.warm_up_time = Duration::from_secs_f64(secs);
                    }
                }
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|s| s.parse::<f64>().ok()) {
                        c.measurement_time = Duration::from_secs_f64(secs);
                    }
                }
                other if other.starts_with("--") => {
                    // Unknown flag: treat as boolean and skip only the flag
                    // itself — consuming the next argument too would swallow
                    // a name filter after e.g. `--verbose`. Flags written as
                    // `--flag=value` carry their value in the same argument.
                }
                free => c.filter = Some(free.to_owned()),
            }
        }
        c
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark if it matches the active filter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        self.ran += 1;
        report(id, &b.samples);
        self
    }

    /// Prints a closing line; called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("\ncompleted {} benchmark(s)", self.ran);
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Per-iteration durations (one entry per timed batch, averaged).
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, discarding a warm-up period and then sampling
    /// batches until the measurement budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, counting
        // iterations to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        // Batch size targeting ~10ms per sample so Instant overhead is
        // negligible even for nanosecond-scale routines. Run at least one
        // warm-up iteration so a zero warm-up budget cannot divide by zero.
        if warm_iters == 0 {
            black_box(routine());
            warm_iters = 1;
        }
        let per_iter = warm_start.elapsed() / u32::try_from(warm_iters).unwrap_or(u32::MAX);
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;

        let budget_start = Instant::now();
        while budget_start.elapsed() < self.measurement_time {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed() / u32::try_from(batch).unwrap_or(u32::MAX));
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let sum: Duration = samples.iter().sum();
    let mean = sum / u32::try_from(samples.len()).unwrap_or(u32::MAX);
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `fn main()` that runs the given groups, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            ..Criterion::default()
        };
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| calls += 1));
        assert_eq!(c.ran, 1);
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("other".into()),
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(2),
            ..Criterion::default()
        };
        c.bench_function("smoke/add", |b| b.iter(|| ()));
        assert_eq!(c.ran, 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.000 s");
    }
}
